#include "serve/model_registry.hpp"

#include <algorithm>

#include "fault/injection.hpp"
#include "util/serialize.hpp"

namespace sdb::serve {

ModelRegistry::ModelRegistry(Config config, int dim)
    : config_(config),
      dim_(dim),
      role_(config.role),
      incremental_(
          dbscan::IncrementalDbscan::Config{config.params,
                                            config.rebuild_threshold},
          dim) {
  SDB_CHECK(dim > 0, "registry dimension must be positive");
  const std::scoped_lock lock(writer_mu_);
  // Followers always keep a stream log (in-memory when wal_dir is empty) so
  // they can re-ship the stream after a promotion.
  const bool needs_wal = !config_.wal_dir.empty() || config_.replicated ||
                         config_.role == RegistryRole::kFollower;
  if (needs_wal) {
    wal_ = std::make_unique<RegistryWal>(config_.wal_dir);
    recover_locked();
  } else {
    // Publish an empty snapshot so model() is never null.
    publish_locked();
  }
}

void ModelRegistry::recover_locked() {
  // Base state: the newest compaction snapshot, if any. The snapshot is
  // always taken at a publish boundary (compact() publishes first), so its
  // epoch is committed by construction.
  u64 committed_epoch = 0;
  if (wal_->snapshot().has_value()) {
    load_snapshot_locked(*wal_->snapshot(), &committed_epoch);
  }
  // Committed prefix: everything through the LAST kPublish marker. The
  // suffix was never part of a published snapshot — truncate it so no
  // future recovery can resurrect mutations this incarnation rejected.
  const std::vector<WalRecord>& recs = wal_->records();
  size_t committed = 0;
  for (size_t i = 0; i < recs.size(); ++i) {
    if (recs[i].type == WalRecordType::kPublish) {
      committed = i + 1;
      committed_epoch = recs[i].epoch;
    }
  }
  wal_discarded_ = recs.size() - committed;
  // Replay straight into the incremental state: no re-appending, no
  // publish-cadence side effects. Insert order reproduces point ids
  // exactly, so logged remove ids stay valid.
  for (size_t i = 0; i < committed; ++i) {
    const WalRecord& rec = recs[i];
    switch (rec.type) {
      case WalRecordType::kInsert:
        incremental_.insert(rec.coords);
        ++wal_replayed_;
        break;
      case WalRecordType::kRemove:
        SDB_CHECK(incremental_.try_remove(rec.point_id),
                  "WAL replay: remove of a dead id (log corrupted?)");
        ++wal_replayed_;
        break;
      case WalRecordType::kPublish:
        break;  // markers position the commit point; nothing to apply
    }
  }
  wal_->truncate_to(committed);
  if (role_.load(std::memory_order_relaxed) == RegistryRole::kFollower) {
    // A follower's log must stay a byte prefix of the primary's stream, so
    // recovery republishes the committed epoch WITHOUT appending a fresh
    // marker (epoch 0 = empty model for a virgin follower).
    publish_as_locked(committed_epoch, /*log_marker=*/false);
    return;
  }
  // Republish exactly the last committed epoch (1 for a fresh log: the
  // initial empty-snapshot publish below behaves like first construction).
  if (committed_epoch > 0) {
    epoch_.store(committed_epoch - 1, std::memory_order_relaxed);
  }
  publish_locked();
}

void ModelRegistry::load_snapshot_locked(const std::string& blob, u64* epoch) {
  BinaryReader r(blob.data(), blob.size());
  const u32 dim = r.read_u32();
  SDB_CHECK(static_cast<int>(dim) == dim_,
            "registry snapshot dimension mismatch");
  *epoch = r.read_u64();
  const u64 id_space = r.read_u64();
  const u64 live = r.read_u64();
  // Live points only, (id, coords) in increasing id order. Ids skipped over
  // (removed, possibly reclaimed, before the snapshot was cut) are burned —
  // they report removed forever — so the restored id space lines up with
  // the source registry's and logged remove ids stay meaningful.
  std::vector<double> coords(dim);
  for (u64 i = 0; i < live; ++i) {
    const auto id = static_cast<PointId>(r.read_u64());
    for (u32 d = 0; d < dim; ++d) coords[d] = r.read_f64();
    incremental_.restore(id, coords);
  }
  incremental_.burn_ids(static_cast<PointId>(id_space));
}

std::string ModelRegistry::encode_snapshot_locked(u64 epoch) const {
  BinaryWriter w;
  w.write_u32(static_cast<u32>(dim_));
  w.write_u64(epoch);
  const auto view = incremental_.storage_view();
  w.write_u64(view.id_space);
  u64 live = 0;
  for (size_t row = 0; row < view.rows->size(); ++row) {
    live += view.removed[row] == 0 ? 1 : 0;
  }
  w.write_u64(live);
  for (size_t row = 0; row < view.rows->size(); ++row) {
    if (view.removed[row] != 0) continue;
    w.write_u64(static_cast<u64>(view.external_ids[row]));
    const auto p = (*view.rows)[static_cast<PointId>(row)];
    for (int d = 0; d < dim_; ++d) w.write_f64(p[static_cast<size_t>(d)]);
  }
  return std::string(w.buffer().data(), w.buffer().size());
}

u64 ModelRegistry::compact() {
  const std::scoped_lock lock(writer_mu_);
  SDB_CHECK(wal_ != nullptr, "compact() requires wal_dir or replication");
  SDB_CHECK(role_.load(std::memory_order_relaxed) == RegistryRole::kPrimary,
            "compact() is a primary-side operation");
  // Publish first: the snapshot is then a committed state and the rotated
  // (empty) log needs no replay at all.
  const u64 e = publish_locked();
  wal_->compact(encode_snapshot_locked(e), e);
  return e;
}

ModelRegistry::StreamCursor ModelRegistry::replication_cursor() const {
  const std::scoped_lock lock(writer_mu_);
  SDB_CHECK(wal_ != nullptr, "replication_cursor() requires a stream log");
  return {wal_->generation(), wal_->record_count()};
}

ShipChunk ModelRegistry::ship_from(u64 generation, u64 seq,
                                   size_t max_records) const {
  const std::scoped_lock lock(writer_mu_);
  SDB_CHECK(wal_ != nullptr, "ship_from() requires a stream log");
  ShipChunk chunk;
  chunk.committed_epoch = epoch_.load(std::memory_order_relaxed);
  chunk.generation = wal_->generation();
  if (generation != wal_->generation() || seq > wal_->record_count()) {
    // The cursor predates the last compaction (or belongs to a different
    // stream entirely — a follower of a previous term's primary): hand the
    // follower this generation's base snapshot so it can restart the
    // stream at (generation, 0).
    chunk.need_snapshot = true;
    if (wal_->snapshot().has_value()) {
      chunk.snapshot_blob = *wal_->snapshot();
      chunk.snapshot_epoch = wal_->snapshot_epoch();
    }
    return chunk;
  }
  chunk.start_seq = seq;
  const std::vector<WalRecord>& recs = wal_->records();
  const size_t end = std::min(recs.size(), seq + max_records);
  chunk.records.assign(recs.begin() + static_cast<ptrdiff_t>(seq),
                       recs.begin() + static_cast<ptrdiff_t>(end));
  return chunk;
}

void ModelRegistry::apply_replicated(const WalRecord& rec) {
  const std::scoped_lock lock(writer_mu_);
  SDB_CHECK(role_.load(std::memory_order_relaxed) == RegistryRole::kFollower,
            "apply_replicated() on a non-follower");
  switch (rec.type) {
    case WalRecordType::kInsert:
      wal_->append_insert(rec.coords);
      incremental_.insert(rec.coords);
      ++mutations_;
      break;
    case WalRecordType::kRemove:
      // The primary validated the remove before logging it, and the
      // follower mirrors the primary's id space record-for-record, so the
      // id must be live here too.
      wal_->append_remove(rec.point_id);
      SDB_CHECK(incremental_.try_remove(rec.point_id),
                "replicated remove of an unknown id: stream misaligned");
      ++mutations_;
      break;
    case WalRecordType::kPublish:
      wal_->append_publish(rec.epoch);
      // The stream's own marker was just appended; publish without logging
      // a second one.
      publish_as_locked(rec.epoch, /*log_marker=*/false);
      break;
  }
}

void ModelRegistry::install_replica_snapshot(const std::string& blob,
                                             u64 generation) {
  const std::scoped_lock lock(writer_mu_);
  SDB_CHECK(role_.load(std::memory_order_relaxed) == RegistryRole::kFollower,
            "install_replica_snapshot() on a non-follower");
  // Drop all local state: the shipped snapshot becomes the whole world.
  incremental_ = dbscan::IncrementalDbscan(
      dbscan::IncrementalDbscan::Config{config_.params,
                                        config_.rebuild_threshold},
      dim_);
  u64 epoch = 0;
  if (!blob.empty()) load_snapshot_locked(blob, &epoch);
  wal_->reset_generation(generation, blob, epoch);
  publish_as_locked(epoch, /*log_marker=*/false);
}

u64 ModelRegistry::promote_to_primary() {
  const std::scoped_lock lock(writer_mu_);
  SDB_CHECK(role_.load(std::memory_order_relaxed) == RegistryRole::kFollower,
            "promote_to_primary() on a non-follower");
  role_.store(RegistryRole::kPrimary, std::memory_order_release);
  return epoch_.load(std::memory_order_relaxed);
}

bool ModelRegistry::write_available() {
  if (stalled_.load(std::memory_order_acquire) ||
      SDB_INJECT("serve.registry.stall")) {
    stall_rejections_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  return true;
}

PointId ModelRegistry::insert(std::span<const double> coords) {
  const std::scoped_lock lock(writer_mu_);
  SDB_CHECK(role_.load(std::memory_order_relaxed) == RegistryRole::kPrimary,
            "direct insert on a follower (writes go through replication)");
  // Write-ahead: the record is durable before the state mutates. A crash
  // between the two leaves an unapplied record, which recovery discards
  // unless a later publish committed it.
  if (wal_ != nullptr) wal_->append_insert(coords);
  const PointId id = incremental_.insert(coords);
  ++mutations_;
  ++since_publish_;
  maybe_publish_locked();
  return id;
}

bool ModelRegistry::try_remove(PointId id) {
  const std::scoped_lock lock(writer_mu_);
  SDB_CHECK(role_.load(std::memory_order_relaxed) == RegistryRole::kPrimary,
            "direct remove on a follower (writes go through replication)");
  if (id < 0 || static_cast<size_t>(id) >= incremental_.size() ||
      incremental_.is_removed(id)) {
    return false;
  }
  // Logged after validation: replay only ever sees applicable removes.
  if (wal_ != nullptr) wal_->append_remove(id);
  SDB_CHECK(incremental_.try_remove(id), "validated remove failed to apply");
  ++mutations_;
  ++since_publish_;
  maybe_publish_locked();
  return true;
}

std::vector<dbscan::IncrementalDbscan::BatchResult> ModelRegistry::apply_batch(
    std::span<const dbscan::IncrementalDbscan::BatchOp> ops) {
  using BatchOp = dbscan::IncrementalDbscan::BatchOp;
  using BatchResult = dbscan::IncrementalDbscan::BatchResult;
  const std::scoped_lock lock(writer_mu_);
  SDB_CHECK(role_.load(std::memory_order_relaxed) == RegistryRole::kPrimary,
            "apply_batch on a follower (writes go through replication)");
  std::vector<BatchResult> results;
  u64 applied = 0;
  if (wal_ == nullptr) {
    // In-memory standalone registry (the streaming pipeline's default):
    // removals share one affected-region re-clustering.
    results = incremental_.apply_batch(ops);
    for (const BatchResult& r : results) applied += r.applied ? 1 : 0;
  } else {
    // With a WAL the record stream must EQUAL the state evolution op for op
    // — replay and replication re-apply records one at a time, and a
    // batched region re-clustering may land ambiguous borders differently.
    // Same canonical order (inserts, then removes), no shared region.
    results.resize(ops.size());
    for (size_t i = 0; i < ops.size(); ++i) {
      if (ops[i].kind != BatchOp::Kind::kInsert) continue;
      wal_->append_insert(ops[i].coords);
      results[i] = {true, incremental_.insert(ops[i].coords)};
      ++applied;
    }
    for (size_t i = 0; i < ops.size(); ++i) {
      if (ops[i].kind != BatchOp::Kind::kRemove) continue;
      const PointId id = ops[i].id;
      results[i].id = id;
      if (id < 0 || static_cast<size_t>(id) >= incremental_.size() ||
          incremental_.is_removed(id)) {
        continue;
      }
      wal_->append_remove(id);
      SDB_CHECK(incremental_.try_remove(id),
                "validated remove failed to apply");
      results[i].applied = true;
      ++applied;
    }
  }
  mutations_ += applied;
  since_publish_ += applied;
  maybe_publish_locked();
  return results;
}

void ModelRegistry::set_rebuild_threshold(size_t threshold) {
  const std::scoped_lock lock(writer_mu_);
  incremental_.set_rebuild_threshold(threshold);
}

size_t ModelRegistry::rebuild_threshold() const {
  const std::scoped_lock lock(writer_mu_);
  return incremental_.rebuild_threshold();
}

void ModelRegistry::set_core_sample_fraction(double fraction) {
  SDB_CHECK(fraction > 0.0 && fraction <= 1.0,
            "core_sample_fraction must be in (0, 1]");
  const std::scoped_lock lock(writer_mu_);
  config_.model_options.core_sample_fraction = fraction;
}

double ModelRegistry::core_sample_fraction() const {
  const std::scoped_lock lock(writer_mu_);
  return config_.model_options.core_sample_fraction;
}

u64 ModelRegistry::unpublished_mutations() const {
  const std::scoped_lock lock(writer_mu_);
  return since_publish_;
}

u64 ModelRegistry::state_digest() const {
  const std::scoped_lock lock(writer_mu_);
  return incremental_.digest();
}

void ModelRegistry::bootstrap(const PointSet& points) {
  SDB_CHECK(points.dim() == dim_, "bootstrap: dimension mismatch");
  const std::scoped_lock lock(writer_mu_);
  SDB_CHECK(role_.load(std::memory_order_relaxed) == RegistryRole::kPrimary,
            "bootstrap on a follower (writes go through replication)");
  for (PointId i = 0; i < static_cast<PointId>(points.size()); ++i) {
    if (wal_ != nullptr) wal_->append_insert(points[i]);
    incremental_.insert(points[i]);
    ++mutations_;
  }
  publish_locked();
}

u64 ModelRegistry::publish() {
  const std::scoped_lock lock(writer_mu_);
  SDB_CHECK(role_.load(std::memory_order_relaxed) == RegistryRole::kPrimary,
            "publish on a follower (epochs come from the primary's stream)");
  return publish_locked();
}

void ModelRegistry::maybe_publish_locked() {
  if (config_.publish_every > 0 && since_publish_ >= config_.publish_every) {
    publish_locked();
  }
}

u64 ModelRegistry::publish_locked() {
  return publish_as_locked(epoch_.load(std::memory_order_relaxed) + 1,
                           /*log_marker=*/true);
}

u64 ModelRegistry::publish_as_locked(u64 epoch, bool log_marker) {
  // Row-compacted build: no dense copy of the id space, only the stored
  // rows plus an O(id_space) label scatter (the stable-id lookup contract).
  const auto view = incremental_.storage_view();
  std::vector<char> core_mask(view.id_space, 0);
  for (size_t row = 0; row < view.rows->size(); ++row) {
    if (view.removed[row] == 0 && view.core[row] != 0) {
      core_mask[static_cast<size_t>(view.external_ids[row])] = 1;
    }
  }
  std::shared_ptr<ClusterModel> model = ClusterModel::build_view(
      *view.rows, view.external_ids, view.removed, view.id_space,
      incremental_.clustering(), core_mask, config_.params,
      config_.model_options);
  model->set_epoch(epoch);
  // The commit marker hits the log before the in-memory swap: once any
  // reader can observe this epoch, a restart will recover it.
  if (log_marker && wal_ != nullptr) wal_->append_publish(epoch);
  ++publishes_;
  since_publish_ = 0;
  current_.store(std::move(model), std::memory_order_release);
  epoch_.store(epoch, std::memory_order_release);
  return epoch;
}

u64 ModelRegistry::publishes() const {
  const std::scoped_lock lock(writer_mu_);
  return publishes_;
}

u64 ModelRegistry::mutations() const {
  const std::scoped_lock lock(writer_mu_);
  return mutations_;
}

size_t ModelRegistry::active_points() const {
  const std::scoped_lock lock(writer_mu_);
  return incremental_.active_size();
}

}  // namespace sdb::serve
