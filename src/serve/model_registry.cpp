#include "serve/model_registry.hpp"

#include "fault/injection.hpp"

namespace sdb::serve {

ModelRegistry::ModelRegistry(Config config, int dim)
    : config_(config),
      dim_(dim),
      incremental_(
          dbscan::IncrementalDbscan::Config{config.params,
                                            config.rebuild_threshold},
          dim) {
  SDB_CHECK(dim > 0, "registry dimension must be positive");
  // Publish an empty snapshot so model() is never null.
  const std::scoped_lock lock(writer_mu_);
  publish_locked();
}

bool ModelRegistry::write_available() {
  if (stalled_.load(std::memory_order_acquire) ||
      SDB_INJECT("serve.registry.stall")) {
    stall_rejections_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  return true;
}

PointId ModelRegistry::insert(std::span<const double> coords) {
  const std::scoped_lock lock(writer_mu_);
  const PointId id = incremental_.insert(coords);
  ++mutations_;
  ++since_publish_;
  maybe_publish_locked();
  return id;
}

bool ModelRegistry::try_remove(PointId id) {
  const std::scoped_lock lock(writer_mu_);
  if (id < 0 || static_cast<size_t>(id) >= incremental_.size() ||
      incremental_.is_removed(id)) {
    return false;
  }
  incremental_.remove(id);
  ++mutations_;
  ++since_publish_;
  maybe_publish_locked();
  return true;
}

void ModelRegistry::bootstrap(const PointSet& points) {
  SDB_CHECK(points.dim() == dim_, "bootstrap: dimension mismatch");
  const std::scoped_lock lock(writer_mu_);
  for (PointId i = 0; i < static_cast<PointId>(points.size()); ++i) {
    incremental_.insert(points[i]);
    ++mutations_;
  }
  publish_locked();
}

u64 ModelRegistry::publish() {
  const std::scoped_lock lock(writer_mu_);
  return publish_locked();
}

void ModelRegistry::maybe_publish_locked() {
  if (config_.publish_every > 0 && since_publish_ >= config_.publish_every) {
    publish_locked();
  }
}

u64 ModelRegistry::publish_locked() {
  std::vector<char> core_mask(incremental_.size(), 0);
  for (PointId id = 0; id < static_cast<PointId>(incremental_.size()); ++id) {
    if (!incremental_.is_removed(id) && incremental_.is_core(id)) {
      core_mask[static_cast<size_t>(id)] = 1;
    }
  }
  std::shared_ptr<ClusterModel> model =
      ClusterModel::build(incremental_.points(), incremental_.clustering(),
                          core_mask, config_.params, config_.model_options);
  const u64 e = epoch_.load(std::memory_order_relaxed) + 1;
  model->set_epoch(e);
  ++publishes_;
  since_publish_ = 0;
  current_.store(std::move(model), std::memory_order_release);
  epoch_.store(e, std::memory_order_release);
  return e;
}

u64 ModelRegistry::publishes() const {
  const std::scoped_lock lock(writer_mu_);
  return publishes_;
}

u64 ModelRegistry::mutations() const {
  const std::scoped_lock lock(writer_mu_);
  return mutations_;
}

size_t ModelRegistry::active_points() const {
  const std::scoped_lock lock(writer_mu_);
  return incremental_.active_size();
}

}  // namespace sdb::serve
