#include "serve/model_registry.hpp"

#include "fault/injection.hpp"
#include "util/serialize.hpp"

namespace sdb::serve {

ModelRegistry::ModelRegistry(Config config, int dim)
    : config_(config),
      dim_(dim),
      incremental_(
          dbscan::IncrementalDbscan::Config{config.params,
                                            config.rebuild_threshold},
          dim) {
  SDB_CHECK(dim > 0, "registry dimension must be positive");
  const std::scoped_lock lock(writer_mu_);
  if (!config_.wal_dir.empty()) {
    wal_ = std::make_unique<RegistryWal>(config_.wal_dir);
    recover_locked();
  } else {
    // Publish an empty snapshot so model() is never null.
    publish_locked();
  }
}

void ModelRegistry::recover_locked() {
  // Base state: the newest compaction snapshot, if any. The snapshot is
  // always taken at a publish boundary (compact() publishes first), so its
  // epoch is committed by construction.
  u64 committed_epoch = 0;
  if (wal_->snapshot().has_value()) {
    load_snapshot_locked(*wal_->snapshot(), &committed_epoch);
  }
  // Committed prefix: everything through the LAST kPublish marker. The
  // suffix was never part of a published snapshot — truncate it so no
  // future recovery can resurrect mutations this incarnation rejected.
  const std::vector<WalRecord>& recs = wal_->records();
  size_t committed = 0;
  for (size_t i = 0; i < recs.size(); ++i) {
    if (recs[i].type == WalRecordType::kPublish) {
      committed = i + 1;
      committed_epoch = recs[i].epoch;
    }
  }
  wal_discarded_ = recs.size() - committed;
  // Replay straight into the incremental state: no re-appending, no
  // publish-cadence side effects. Insert order reproduces point ids
  // exactly, so logged remove ids stay valid.
  for (size_t i = 0; i < committed; ++i) {
    const WalRecord& rec = recs[i];
    switch (rec.type) {
      case WalRecordType::kInsert:
        incremental_.insert(rec.coords);
        ++wal_replayed_;
        break;
      case WalRecordType::kRemove:
        incremental_.remove(rec.point_id);
        ++wal_replayed_;
        break;
      case WalRecordType::kPublish:
        break;  // markers position the commit point; nothing to apply
    }
  }
  wal_->truncate_to(committed);
  // Republish exactly the last committed epoch (1 for a fresh log: the
  // initial empty-snapshot publish below behaves like first construction).
  if (committed_epoch > 0) {
    epoch_.store(committed_epoch - 1, std::memory_order_relaxed);
  }
  publish_locked();
}

void ModelRegistry::load_snapshot_locked(const std::string& blob, u64* epoch) {
  BinaryReader r(blob.data(), blob.size());
  const u32 dim = r.read_u32();
  SDB_CHECK(static_cast<int>(dim) == dim_,
            "registry snapshot dimension mismatch");
  *epoch = r.read_u64();
  const u64 n = r.read_u64();
  std::vector<double> coords(dim);
  for (u64 i = 0; i < n; ++i) {
    for (u32 d = 0; d < dim; ++d) coords[d] = r.read_f64();
    incremental_.insert(coords);
  }
  for (u64 i = 0; i < n; ++i) {
    if (r.read_u8() != 0) incremental_.remove(static_cast<PointId>(i));
  }
}

std::string ModelRegistry::encode_snapshot_locked(u64 epoch) const {
  BinaryWriter w;
  w.write_u32(static_cast<u32>(dim_));
  w.write_u64(epoch);
  const PointSet& points = incremental_.points();  // includes tombstoned
  w.write_u64(points.size());
  for (size_t i = 0; i < points.size(); ++i) {
    const auto p = points[static_cast<PointId>(i)];
    for (int d = 0; d < dim_; ++d) w.write_f64(p[static_cast<size_t>(d)]);
  }
  for (size_t i = 0; i < points.size(); ++i) {
    w.write_u8(incremental_.is_removed(static_cast<PointId>(i)) ? 1 : 0);
  }
  return std::string(w.buffer().data(), w.buffer().size());
}

u64 ModelRegistry::compact() {
  const std::scoped_lock lock(writer_mu_);
  SDB_CHECK(wal_ != nullptr, "compact() requires wal_dir");
  // Publish first: the snapshot is then a committed state and the rotated
  // (empty) log needs no replay at all.
  const u64 e = publish_locked();
  wal_->compact(encode_snapshot_locked(e));
  return e;
}

bool ModelRegistry::write_available() {
  if (stalled_.load(std::memory_order_acquire) ||
      SDB_INJECT("serve.registry.stall")) {
    stall_rejections_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  return true;
}

PointId ModelRegistry::insert(std::span<const double> coords) {
  const std::scoped_lock lock(writer_mu_);
  // Write-ahead: the record is durable before the state mutates. A crash
  // between the two leaves an unapplied record, which recovery discards
  // unless a later publish committed it.
  if (wal_ != nullptr) wal_->append_insert(coords);
  const PointId id = incremental_.insert(coords);
  ++mutations_;
  ++since_publish_;
  maybe_publish_locked();
  return id;
}

bool ModelRegistry::try_remove(PointId id) {
  const std::scoped_lock lock(writer_mu_);
  if (id < 0 || static_cast<size_t>(id) >= incremental_.size() ||
      incremental_.is_removed(id)) {
    return false;
  }
  // Logged after validation: replay only ever sees applicable removes.
  if (wal_ != nullptr) wal_->append_remove(id);
  incremental_.remove(id);
  ++mutations_;
  ++since_publish_;
  maybe_publish_locked();
  return true;
}

void ModelRegistry::bootstrap(const PointSet& points) {
  SDB_CHECK(points.dim() == dim_, "bootstrap: dimension mismatch");
  const std::scoped_lock lock(writer_mu_);
  for (PointId i = 0; i < static_cast<PointId>(points.size()); ++i) {
    if (wal_ != nullptr) wal_->append_insert(points[i]);
    incremental_.insert(points[i]);
    ++mutations_;
  }
  publish_locked();
}

u64 ModelRegistry::publish() {
  const std::scoped_lock lock(writer_mu_);
  return publish_locked();
}

void ModelRegistry::maybe_publish_locked() {
  if (config_.publish_every > 0 && since_publish_ >= config_.publish_every) {
    publish_locked();
  }
}

u64 ModelRegistry::publish_locked() {
  std::vector<char> core_mask(incremental_.size(), 0);
  for (PointId id = 0; id < static_cast<PointId>(incremental_.size()); ++id) {
    if (!incremental_.is_removed(id) && incremental_.is_core(id)) {
      core_mask[static_cast<size_t>(id)] = 1;
    }
  }
  std::shared_ptr<ClusterModel> model =
      ClusterModel::build(incremental_.points(), incremental_.clustering(),
                          core_mask, config_.params, config_.model_options);
  const u64 e = epoch_.load(std::memory_order_relaxed) + 1;
  model->set_epoch(e);
  // The commit marker hits the log before the in-memory swap: once any
  // reader can observe epoch e, a restart will recover epoch e.
  if (wal_ != nullptr) wal_->append_publish(e);
  ++publishes_;
  since_publish_ = 0;
  current_.store(std::move(model), std::memory_order_release);
  epoch_.store(e, std::memory_order_release);
  return e;
}

u64 ModelRegistry::publishes() const {
  const std::scoped_lock lock(writer_mu_);
  return publishes_;
}

u64 ModelRegistry::mutations() const {
  const std::scoped_lock lock(writer_mu_);
  return mutations_;
}

size_t ModelRegistry::active_points() const {
  const std::scoped_lock lock(writer_mu_);
  return incremental_.active_size();
}

}  // namespace sdb::serve
