// Sharded LRU cache for repeated classify queries.
//
// Real query traffic is heavily skewed (a few hot points queried over and
// over); a classify result is immutable for the lifetime of one model epoch,
// so caching (point -> label) is sound as long as entries are fenced by
// epoch. Each shard is an independent mutex + LRU list + hash map, selected
// by the point's content hash, so concurrent workers only contend when they
// hit the same shard. An entry is valid only for the epoch it was inserted
// under; a shard that observes a different epoch drops its contents
// wholesale (cheap, and publication is rare relative to queries).
//
// Keys are FNV-1a hashes of the raw coordinate bytes with full-coordinate
// equality confirmation on hit, so hash collisions degrade to misses, never
// to wrong answers.
#pragma once

#include <list>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "util/common.hpp"

namespace sdb::serve {

class ClassifyCache {
 public:
  /// `shards` concurrent regions of `entries_per_shard` LRU entries each.
  /// shards == 0 or entries_per_shard == 0 disables the cache.
  ClassifyCache(size_t shards, size_t entries_per_shard);

  [[nodiscard]] bool enabled() const { return !shards_.empty(); }

  /// Content hash of a query point (shard + map key).
  static u64 hash_point(std::span<const double> point);

  /// True and sets *label if (point, epoch) is cached.
  bool lookup(u64 hash, std::span<const double> point, u64 epoch,
              ClusterId* label);

  /// Cache a classify result computed under `epoch`.
  void insert(u64 hash, std::span<const double> point, u64 epoch,
              ClusterId label);

 private:
  struct Entry {
    u64 hash = 0;
    std::vector<double> point;
    ClusterId label = kNoise;
  };
  struct Shard {
    std::mutex mu;
    u64 epoch = ~0ull;  // epoch the contents belong to
    std::list<Entry> lru;  // front = most recent
    std::unordered_map<u64, std::list<Entry>::iterator> map;
  };

  Shard& shard_of(u64 hash) { return shards_[hash % shards_.size()]; }

  std::vector<Shard> shards_;
  size_t entries_per_shard_;
};

}  // namespace sdb::serve
