// ModelRegistry — RCU-style versioned publication of ClusterModel snapshots.
//
// The serving layer separates two worlds with very different rates:
//   * readers (classify/lookup traffic, potentially millions/sec) grab the
//     current snapshot with one atomic shared_ptr load and never wait for
//     the writer — a reader holds its snapshot alive by refcount, exactly
//     the RCU read-side critical section with shared_ptr as the grace
//     period mechanism;
//   * the writer applies inserts/removes through the exact-semantics
//     IncrementalDbscan and, every `publish_every` mutations (the epoch
//     cadence), builds a fresh immutable ClusterModel and publishes it with
//     one atomic store. Old snapshots die when the last reader drops them.
//
// The swap itself is a pointer-sized atomic operation: readers between
// epochs see either the old or the new snapshot in full, never a mix
// (tests/test_serve_registry.cpp drives this under TSan via the `sanitize`
// ctest label).
// Durability (optional): with Config::wal_dir set, every mutation is
// appended to a write-ahead log BEFORE it is applied, and every publish
// appends a commit marker carrying the new epoch (serve/registry_wal.hpp).
// A registry constructed over the same directory after a crash — even a
// SIGKILL mid-append — replays the log through the last commit marker and
// republishes exactly the last committed epoch; mutations that never made
// it into a published snapshot are truncated, not resurrected. compact()
// folds the log into a checksummed snapshot so the log stays bounded.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <string>

#include "core/incremental.hpp"
#include "serve/cluster_model.hpp"
#include "serve/registry_wal.hpp"

namespace sdb::serve {

class ModelRegistry {
 public:
  struct Config {
    dbscan::DbscanParams params;
    /// IncrementalDbscan kd-tree rebuild threshold (see incremental.hpp).
    size_t rebuild_threshold = 256;
    /// Publish a fresh snapshot every N mutations; 0 = manual publish()
    /// only. Smaller = fresher models, more build work per mutation.
    u64 publish_every = 64;
    /// Snapshot build options (core subsampling knob).
    ClusterModel::Options model_options;
    /// Write-ahead-log directory (empty = durability off). See the class
    /// comment: committed-epoch crash recovery with torn-tail truncation.
    std::string wal_dir;
  };

  ModelRegistry(Config config, int dim);

  /// --- read side (wait-free w.r.t. the writer, any thread) ---
  /// The current published snapshot; never null (an empty model is
  /// published at construction).
  [[nodiscard]] std::shared_ptr<const ClusterModel> model() const {
    return current_.load(std::memory_order_acquire);
  }
  /// Epoch of the current snapshot; increments on every publish.
  [[nodiscard]] u64 epoch() const {
    return epoch_.load(std::memory_order_acquire);
  }

  /// --- write side (internally serialized; call from any thread) ---
  /// True when the writer can accept a mutation right now. False while the
  /// writer is stalled — set_stalled(true) (ops drain, maintenance) or an
  /// injected `serve.registry.stall` fault — in which case callers should
  /// degrade gracefully: keep serving reads from the current snapshot and
  /// reject mutations with a backpressure signal instead of blocking
  /// (serve::ReplyStatus::kDegraded). Each refusal is counted.
  [[nodiscard]] bool write_available();
  void set_stalled(bool stalled) {
    stalled_.store(stalled, std::memory_order_release);
  }
  [[nodiscard]] u64 stall_rejections() const {
    return stall_rejections_.load(std::memory_order_relaxed);
  }

  /// Insert a point into the live clustering; returns its id. May publish
  /// (epoch cadence).
  PointId insert(std::span<const double> coords);
  /// Remove a point; false if the id is unknown or already removed.
  bool try_remove(PointId id);
  /// Insert every point of `points` (bulk bootstrap), then publish once.
  void bootstrap(const PointSet& points);
  /// Build and publish a snapshot of the current state now; returns the new
  /// epoch.
  u64 publish();

  [[nodiscard]] int dim() const { return dim_; }
  /// Publishes/mutations performed by THIS process (replayed WAL records
  /// are not re-counted; the durable quantity across restarts is epoch()).
  [[nodiscard]] u64 publishes() const;
  [[nodiscard]] u64 mutations() const;
  [[nodiscard]] size_t active_points() const;

  /// --- durability (wal_dir set; aborts otherwise) ---
  /// Publish, then fold log + state into a fresh snapshot generation and
  /// start an empty log. Returns the published (= snapshotted) epoch.
  u64 compact();
  /// WAL mutation records replayed during construction.
  [[nodiscard]] u64 wal_replayed() const { return wal_replayed_; }
  /// Uncommitted/torn WAL records dropped during construction.
  [[nodiscard]] u64 wal_discarded() const { return wal_discarded_; }
  /// The underlying log (observability/tests); null when durability is off.
  [[nodiscard]] const RegistryWal* wal() const { return wal_.get(); }

 private:
  u64 publish_locked();
  void maybe_publish_locked();
  void recover_locked();
  void load_snapshot_locked(const std::string& blob, u64* epoch);
  [[nodiscard]] std::string encode_snapshot_locked(u64 epoch) const;

  Config config_;
  int dim_;
  mutable std::mutex writer_mu_;  // guards incremental_ and the tallies
  dbscan::IncrementalDbscan incremental_;
  std::unique_ptr<RegistryWal> wal_;
  u64 mutations_ = 0;
  u64 since_publish_ = 0;
  u64 publishes_ = 0;
  u64 wal_replayed_ = 0;
  u64 wal_discarded_ = 0;
  std::atomic<std::shared_ptr<const ClusterModel>> current_;
  std::atomic<u64> epoch_{0};
  std::atomic<bool> stalled_{false};
  std::atomic<u64> stall_rejections_{0};
};

}  // namespace sdb::serve
