// ModelRegistry — RCU-style versioned publication of ClusterModel snapshots.
//
// The serving layer separates two worlds with very different rates:
//   * readers (classify/lookup traffic, potentially millions/sec) grab the
//     current snapshot with one atomic shared_ptr load and never wait for
//     the writer — a reader holds its snapshot alive by refcount, exactly
//     the RCU read-side critical section with shared_ptr as the grace
//     period mechanism;
//   * the writer applies inserts/removes through the exact-semantics
//     IncrementalDbscan and, every `publish_every` mutations (the epoch
//     cadence), builds a fresh immutable ClusterModel and publishes it with
//     one atomic store. Old snapshots die when the last reader drops them.
//
// The swap itself is a pointer-sized atomic operation: readers between
// epochs see either the old or the new snapshot in full, never a mix
// (tests/test_serve_registry.cpp drives this under TSan via the `sanitize`
// ctest label).
// Durability (optional): with Config::wal_dir set, every mutation is
// appended to a write-ahead log BEFORE it is applied, and every publish
// appends a commit marker carrying the new epoch (serve/registry_wal.hpp).
// A registry constructed over the same directory after a crash — even a
// SIGKILL mid-append — replays the log through the last commit marker and
// republishes exactly the last committed epoch; mutations that never made
// it into a published snapshot are truncated, not resurrected. compact()
// folds the log into a checksummed snapshot so the log stays bounded.
//
// Replication (src/replica): with Config::replicated set the registry keeps
// a WAL even without a wal_dir (the in-memory RegistryWal mode) and becomes
// shippable — `ship_from()` serves the record stream from any (generation,
// seq) cursor, falling back to a snapshot handshake when the cursor
// predates the last compaction. A Role::kFollower registry is the receive
// side: it accepts no direct writes, only `apply_replicated()` records and
// `install_replica_snapshot()`, and keeps its own WAL positioned at the
// SAME stream coordinates as the primary's — every follower log is a byte
// prefix of the primary's stream, which is what makes post-failover
// re-shipping from the promoted follower sound (see replica/replica_set.hpp
// for the proof sketch). `promote_to_primary()` flips the role in place.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <string>

#include "core/incremental.hpp"
#include "serve/cluster_model.hpp"
#include "serve/registry_wal.hpp"

namespace sdb::serve {

/// Which side of the replication stream a registry sits on. Standalone
/// (unreplicated) registries are primaries that never ship.
enum class RegistryRole : u32 { kPrimary = 0, kFollower = 1 };

/// One reply to a shipping-cursor read (ship_from). Either a run of records
/// resuming at the cursor, or a snapshot handshake when the cursor predates
/// the log's current generation.
struct ShipChunk {
  bool need_snapshot = false;
  u64 generation = 0;       ///< generation the reply (snapshot or records) is in
  std::string snapshot_blob;  ///< need_snapshot: base state ("" = empty base)
  u64 snapshot_epoch = 0;     ///< need_snapshot: epoch of that base state
  u64 start_seq = 0;          ///< records: seq of records.front()
  std::vector<WalRecord> records;
  u64 committed_epoch = 0;  ///< primary's published epoch at reply time
};

class ModelRegistry {
 public:
  struct Config {
    dbscan::DbscanParams params;
    /// IncrementalDbscan kd-tree rebuild threshold (see incremental.hpp).
    size_t rebuild_threshold = 256;
    /// Publish a fresh snapshot every N mutations; 0 = manual publish()
    /// only. Smaller = fresher models, more build work per mutation.
    u64 publish_every = 64;
    /// Snapshot build options (core subsampling knob).
    ClusterModel::Options model_options;
    /// Write-ahead-log directory (empty = durability off). See the class
    /// comment: committed-epoch crash recovery with torn-tail truncation.
    std::string wal_dir;
    /// Replication role (see class comment). Followers reject direct writes.
    RegistryRole role = RegistryRole::kPrimary;
    /// Keep a replication log even without wal_dir (in-memory RegistryWal),
    /// so the registry can ship its stream / re-ship after promotion.
    /// Implied by role == kFollower.
    bool replicated = false;
  };

  ModelRegistry(Config config, int dim);

  /// --- read side (wait-free w.r.t. the writer, any thread) ---
  /// The current published snapshot; never null (an empty model is
  /// published at construction).
  [[nodiscard]] std::shared_ptr<const ClusterModel> model() const {
    return current_.load(std::memory_order_acquire);
  }
  /// Epoch of the current snapshot; increments on every publish.
  [[nodiscard]] u64 epoch() const {
    return epoch_.load(std::memory_order_acquire);
  }

  /// --- write side (internally serialized; call from any thread) ---
  /// True when the writer can accept a mutation right now. False while the
  /// writer is stalled — set_stalled(true) (ops drain, maintenance) or an
  /// injected `serve.registry.stall` fault — in which case callers should
  /// degrade gracefully: keep serving reads from the current snapshot and
  /// reject mutations with a backpressure signal instead of blocking
  /// (serve::ReplyStatus::kDegraded). Each refusal is counted.
  [[nodiscard]] bool write_available();
  void set_stalled(bool stalled) {
    stalled_.store(stalled, std::memory_order_release);
  }
  [[nodiscard]] u64 stall_rejections() const {
    return stall_rejections_.load(std::memory_order_relaxed);
  }

  /// Insert a point into the live clustering; returns its id. May publish
  /// (epoch cadence).
  PointId insert(std::span<const double> coords);
  /// Remove a point; false if the id is unknown or already removed.
  bool try_remove(PointId id);
  /// Apply one micro-epoch of mutations atomically w.r.t. readers: all
  /// inserts (in op order), then all removes (in op order) sharing one
  /// affected-region re-clustering. WAL records are appended in that same
  /// canonical order, so replay and replication reproduce ids exactly.
  /// Returns per-op outcomes aligned with `ops`; counts toward the publish
  /// cadence like individual mutations.
  std::vector<dbscan::IncrementalDbscan::BatchResult> apply_batch(
      std::span<const dbscan::IncrementalDbscan::BatchOp> ops);
  /// Insert every point of `points` (bulk bootstrap), then publish once.
  void bootstrap(const PointSet& points);
  /// Build and publish a snapshot of the current state now; returns the new
  /// epoch.
  u64 publish();

  [[nodiscard]] int dim() const { return dim_; }
  /// Publishes/mutations performed by THIS process (replayed WAL records
  /// are not re-counted; the durable quantity across restarts is epoch()).
  [[nodiscard]] u64 publishes() const;
  [[nodiscard]] u64 mutations() const;
  [[nodiscard]] size_t active_points() const;
  /// Mutations applied since the last publish (the streaming ladder's
  /// epoch-lag watermark input).
  [[nodiscard]] u64 unpublished_mutations() const;
  /// Digest of the live data-plane state (IncrementalDbscan::digest under
  /// the writer lock) — equality against a control replay proves no
  /// acknowledged write was lost or reordered.
  [[nodiscard]] u64 state_digest() const;

  /// --- runtime knobs (the streaming degradation ladder's levers) ---
  /// Raise the kd-tree rebuild threshold under pressure (defer rebuilds),
  /// restore it on recovery. Thread-safe w.r.t. the writer.
  void set_rebuild_threshold(size_t threshold);
  [[nodiscard]] size_t rebuild_threshold() const;
  /// DBSCAN++ core subsampling applied to FUTURE publishes (the data plane
  /// stays exact; only the serving snapshot approximates). Models built
  /// with fraction < 1 report degraded() — see cluster_model.hpp.
  void set_core_sample_fraction(double fraction);
  [[nodiscard]] double core_sample_fraction() const;

  /// --- replication (Config::replicated / Config::role; see class comment) ---
  [[nodiscard]] RegistryRole role() const {
    return role_.load(std::memory_order_acquire);
  }
  /// This registry's position in its replication stream: (generation, next
  /// record seq). On a primary this is the shipping frontier; on a follower
  /// it is how far the stream has been applied.
  struct StreamCursor {
    u64 generation = 0;
    u64 next_seq = 0;
  };
  [[nodiscard]] StreamCursor replication_cursor() const;
  /// Serve up to `max_records` stream records resuming at (`generation`,
  /// `seq`), or a snapshot handshake when that cursor is not servable from
  /// the current generation's log (the follower then installs the snapshot
  /// and re-requests from (chunk.generation, 0)). Requires `replicated`.
  [[nodiscard]] ShipChunk ship_from(u64 generation, u64 seq,
                                    size_t max_records) const;
  /// Follower side: append `rec` to the local stream log, then apply it.
  /// kPublish records publish a snapshot at EXACTLY the record's epoch —
  /// follower epochs are the primary's epochs, never locally invented.
  void apply_replicated(const WalRecord& rec);
  /// Follower side: replace all state with the shipped snapshot (the blob
  /// format of ship_from/compact) and reposition the local log at
  /// (`generation`, 0). Publishes the snapshot's epoch.
  void install_replica_snapshot(const std::string& blob, u64 generation);
  /// Flip a follower to primary in place (failover). Applied-but-unpublished
  /// mutations are kept — they become part of the next published epoch.
  /// Returns the epoch the new primary serves at.
  u64 promote_to_primary();

  /// --- durability (wal_dir set; aborts otherwise) ---
  /// Publish, then fold log + state into a fresh snapshot generation and
  /// start an empty log. Returns the published (= snapshotted) epoch.
  u64 compact();
  /// WAL mutation records replayed during construction.
  [[nodiscard]] u64 wal_replayed() const { return wal_replayed_; }
  /// Uncommitted/torn WAL records dropped during construction.
  [[nodiscard]] u64 wal_discarded() const { return wal_discarded_; }
  /// The underlying log (observability/tests); null when durability is off.
  [[nodiscard]] const RegistryWal* wal() const { return wal_.get(); }

 private:
  u64 publish_locked();
  /// Publish the current state at exactly `epoch`; appends a kPublish
  /// marker to the WAL only when `log_marker` (followers already appended
  /// the stream's own marker; recovery republishes without re-logging).
  u64 publish_as_locked(u64 epoch, bool log_marker);
  void maybe_publish_locked();
  void recover_locked();
  void load_snapshot_locked(const std::string& blob, u64* epoch);
  [[nodiscard]] std::string encode_snapshot_locked(u64 epoch) const;

  Config config_;
  int dim_;
  std::atomic<RegistryRole> role_{RegistryRole::kPrimary};
  mutable std::mutex writer_mu_;  // guards incremental_ and the tallies
  dbscan::IncrementalDbscan incremental_;
  std::unique_ptr<RegistryWal> wal_;
  u64 mutations_ = 0;
  u64 since_publish_ = 0;
  u64 publishes_ = 0;
  u64 wal_replayed_ = 0;
  u64 wal_discarded_ = 0;
  std::atomic<std::shared_ptr<const ClusterModel>> current_;
  std::atomic<u64> epoch_{0};
  std::atomic<bool> stalled_{false};
  std::atomic<u64> stall_rejections_{0};
};

}  // namespace sdb::serve
