// QueryEngine — the serving request loop: admission control, a ThreadPool
// worker back end, a sharded classify cache, and per-request metrics.
//
// Request life cycle:
//   try_submit -> admission (bounded in-flight count; full => shed with
//   kOverloaded, the backpressure signal) -> ThreadPool task -> execute()
//   against an RCU snapshot from the ModelRegistry -> completion callback.
//
// Admission is a single atomic counter rather than a second queue: the
// ThreadPool's own queue holds the admitted requests, and the counter
// bounds how many may be queued or running at once. Rejection is
// synchronous and cheap — an overloaded server answers "no" in O(1)
// instead of timing out, which is what an upstream load balancer wants.
//
// Metrics: monotonic counters (submitted/accepted/shed/completed, per-type,
// cache hits/misses), log-bucket latency histograms (p50/p99/p999 via
// HistogramSnapshot::quantile_micros), and the repo-wide WorkCounters
// (distance evals, tree node visits, ...) aggregated across workers so the
// serving layer's physical work is priced in the same currency as the
// batch engines (util/counters.hpp).
#pragma once

#include <array>
#include <chrono>
#include <functional>

#include "serve/classify_cache.hpp"
#include "serve/latency_histogram.hpp"
#include "serve/model_registry.hpp"
#include "util/counters.hpp"
#include "util/thread_pool.hpp"

namespace sdb::serve {

enum class RequestType : u32 {
  kClassify = 0,  ///< which cluster would this point join?
  kLookup = 1,    ///< label of an existing point id
  kInsert = 2,    ///< add a point to the live clustering
  kRemove = 3,    ///< remove a point from the live clustering
};
inline constexpr size_t kRequestTypes = 4;

enum class ReplyStatus : u32 {
  kOk = 0,
  kOverloaded,  ///< shed at admission (backpressure)
  kNotFound,    ///< remove of an unknown/already-removed id
  kInvalid,     ///< malformed request (bad dimension, bad id)
  kDegraded,    ///< registry writer stalled: mutation refused, reads (from
                ///< the last published snapshot) unaffected
};

struct Request {
  RequestType type = RequestType::kClassify;
  std::vector<double> point;  ///< classify / insert payload
  PointId id = -1;            ///< lookup / remove target
};

struct Reply {
  ReplyStatus status = ReplyStatus::kInvalid;
  ClusterId label = kNoise;  ///< classify / lookup answer
  PointId id = -1;           ///< insert: assigned id; lookup/remove: echo
  u64 epoch = 0;             ///< snapshot epoch that answered
  bool cache_hit = false;
  /// The answering snapshot was built with DBSCAN++ core subsampling (the
  /// streaming ladder's degraded rung): eps-boundary points may misreport
  /// as noise. Callers that need exact answers should retry after the
  /// ladder recovers (the flag clears on the next exact publish).
  bool degraded_model = false;
};

struct MetricsSnapshot {
  u64 submitted = 0;
  u64 accepted = 0;
  u64 shed = 0;       ///< rejected at admission
  u64 completed = 0;
  u64 invalid = 0;
  u64 degraded = 0;   ///< mutations refused while the registry writer stalled
  u64 degraded_model_reads = 0;  ///< reads answered from a subsampled snapshot
  u64 cache_hits = 0;
  u64 cache_misses = 0;
  std::array<u64, kRequestTypes> by_type{};
  HistogramSnapshot latency;           ///< submit -> completion, all types
  HistogramSnapshot classify_latency;  ///< classify only
  WorkCounters work;                   ///< physical work done by workers

  [[nodiscard]] double shed_rate() const {
    return submitted == 0
               ? 0.0
               : static_cast<double>(shed) / static_cast<double>(submitted);
  }
};

class QueryEngine {
 public:
  struct Config {
    unsigned threads = 2;         ///< worker threads
    size_t queue_capacity = 1024; ///< max queued+running requests (admission)
    size_t cache_shards = 8;
    size_t cache_entries_per_shard = 1024;  ///< 0 disables the cache
  };

  QueryEngine(ModelRegistry& registry, Config config);
  /// Drains in-flight requests (ThreadPool teardown runs the queue dry).
  ~QueryEngine() = default;

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  using Callback = std::function<void(const Reply&)>;

  /// Admit one request. Returns false (and invokes `on_done` with
  /// kOverloaded, if provided) when the engine is at capacity.
  bool try_submit(Request request, Callback on_done = {});

  /// Admit up to requests.size() requests as one ThreadPool task (amortizes
  /// per-task overhead for open-loop generators). Requests beyond the free
  /// capacity are shed; returns the number admitted. `on_done` fires once
  /// per admitted request.
  size_t try_submit_batch(std::vector<Request> requests, Callback on_done = {});

  /// Execute synchronously on the calling thread, bypassing admission (used
  /// by the workers themselves, the CLI serve loop, and tests).
  Reply execute(const Request& request);

  /// Block until every admitted request has completed.
  void drain() { pool_.wait_idle(); }

  [[nodiscard]] MetricsSnapshot metrics() const;
  [[nodiscard]] ModelRegistry& registry() { return registry_; }

 private:
  using Clock = std::chrono::steady_clock;

  Reply execute_counted(const Request& request);
  void complete(const Request& request, const Reply& reply,
                Clock::time_point submitted_at);

  ModelRegistry& registry_;
  Config config_;
  ClassifyCache cache_;

  std::atomic<size_t> in_flight_{0};
  std::atomic<u64> submitted_{0};
  std::atomic<u64> accepted_{0};
  std::atomic<u64> shed_{0};
  std::atomic<u64> completed_{0};
  std::atomic<u64> invalid_{0};
  std::atomic<u64> degraded_{0};
  std::atomic<u64> degraded_model_reads_{0};
  std::atomic<u64> cache_hits_{0};
  std::atomic<u64> cache_misses_{0};
  std::array<std::atomic<u64>, kRequestTypes> by_type_{};
  LatencyHistogram latency_;
  LatencyHistogram classify_latency_;

  /// Work counters striped to keep completion cheap; summed on read.
  struct alignas(64) WorkStripe {
    mutable std::mutex mu;
    WorkCounters wc;
  };
  static constexpr size_t kWorkStripes = 8;
  std::array<WorkStripe, kWorkStripes> work_stripes_;

  ThreadPool pool_;  // last member: destroyed (joined) first
};

}  // namespace sdb::serve
