// ClusterModel — an immutable, queryable snapshot of a clustering.
//
// DBSCAN clusters are fully determined by their core points (the core-graph
// view of Wang et al., "Theoretically-Efficient and Practical Parallel
// DBSCAN"): a point belongs to cluster C iff it lies within eps of one of
// C's core points. A snapshot therefore only needs the core points, their
// labels, and a kd-tree over them to answer "which cluster would this new
// point join?" in O(log n) — that query is `classify`.
//
// Following DBSCAN++ (Jang & Jiang), the snapshot can be built from a
// *subsample* of the core points (`Options::core_sample_fraction`): a model
// carrying f·|cores| points answers classify queries proportionally faster
// and serializes proportionally smaller, at the cost of misclassifying
// points near the eps-boundary of a cluster as noise. fraction=1 is exact.
//
// Models are immutable after construction — every accessor is const and
// safe to call from any number of threads concurrently (the publication
// protocol in ModelRegistry depends on this). Snapshots serialize through
// the repo's BinaryWriter/BinaryReader; `load` validates structure and an
// FNV-1a content checksum and reports malformed input by returning null
// instead of aborting, so a serving process can survive a bad snapshot file.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/dbscan.hpp"
#include "geom/point_set.hpp"
#include "spatial/kd_tree.hpp"

namespace sdb::serve {

class ClusterModel {
 public:
  struct Options {
    /// Fraction of core points retained in the snapshot (DBSCAN++-style
    /// accuracy/latency knob). 1.0 keeps every core point (exact classify).
    double core_sample_fraction = 1.0;
    /// Seed for the deterministic core subsample.
    u64 sample_seed = 1;
  };

  /// Per-cluster aggregate stats computed at build time.
  struct ClusterStats {
    u64 size = 0;        ///< members (core + border) at snapshot time
    u64 core_count = 0;  ///< core members (before subsampling)
  };

  struct Summary {
    u64 total_points = 0;  ///< points covered by the snapshot (incl. noise)
    u64 num_clusters = 0;
    u64 core_points = 0;    ///< core points retained in the snapshot
    u64 noise_points = 0;
    int dim = 0;
    double eps = 0.0;
    i64 minpts = 0;
    u64 epoch = 0;
  };

  /// Build a snapshot from any engine's output: the points, their labels,
  /// a per-point core mask (core_mask[i] != 0 iff point i is core), and the
  /// parameters the clustering was produced with. Points flagged core but
  /// labeled noise are ignored (cannot happen in a valid DBSCAN result).
  static std::shared_ptr<ClusterModel> build(
      const PointSet& points, const dbscan::Clustering& clustering,
      const std::vector<char>& core_mask, const dbscan::DbscanParams& params,
      const Options& options);
  static std::shared_ptr<ClusterModel> build(
      const PointSet& points, const dbscan::Clustering& clustering,
      const std::vector<char>& core_mask, const dbscan::DbscanParams& params);

  /// Sparse-id build for row-compacted producers (IncrementalDbscan under
  /// churn): `rows` holds the stored points, `external_ids[row]` the stable
  /// id of each row, and rows flagged in `skip_rows` (tombstones) are
  /// ignored. `clustering.labels` and `core_mask` are indexed by external
  /// id over [0, id_space); ids with no live row are noise. For the trivial
  /// view (ids 0..n-1, nothing skipped) this is byte-identical to build().
  static std::shared_ptr<ClusterModel> build_view(
      const PointSet& rows, std::span<const PointId> external_ids,
      std::span<const char> skip_rows, u64 id_space,
      const dbscan::Clustering& clustering, const std::vector<char>& core_mask,
      const dbscan::DbscanParams& params, const Options& options);

  /// Which cluster would `point` join? Finds the nearest retained core
  /// point; within eps -> that core's cluster id, else kNoise. O(log cores).
  [[nodiscard]] ClusterId classify(std::span<const double> point) const;

  /// Label the snapshot recorded for point `id` (kNoise for noise/removed).
  /// Aborts on ids outside [0, total_points) — callers validate with has().
  [[nodiscard]] ClusterId label_of(PointId id) const;
  [[nodiscard]] bool has(PointId id) const {
    return id >= 0 && static_cast<u64>(id) < labels_.size();
  }

  [[nodiscard]] Summary summary() const;
  [[nodiscard]] const ClusterStats& stats_of(ClusterId cluster) const;
  /// Mean of the cluster's members, dim() doubles per cluster.
  [[nodiscard]] std::span<const double> centroid_of(ClusterId cluster) const;

  [[nodiscard]] int dim() const { return dim_; }
  [[nodiscard]] u64 num_clusters() const { return num_clusters_; }
  [[nodiscard]] const dbscan::DbscanParams& params() const { return params_; }
  [[nodiscard]] u64 core_count() const { return core_points_.size(); }

  /// The core_sample_fraction this model was built with. < 1 marks a
  /// DBSCAN++-degraded snapshot (the streaming ladder's degraded rung);
  /// classify answers may misreport eps-boundary points as noise with
  /// probability bounded by (1 - fraction) per retained-core miss.
  [[nodiscard]] double core_sample_fraction() const {
    return core_sample_fraction_;
  }
  [[nodiscard]] bool degraded() const { return core_sample_fraction_ < 1.0; }

  /// Publication epoch, stamped by ModelRegistry (0 for standalone models).
  /// Not serialized — an epoch identifies a snapshot within one registry.
  [[nodiscard]] u64 epoch() const { return epoch_; }
  void set_epoch(u64 e) { epoch_ = e; }

  /// --- binary snapshot (BinaryWriter/BinaryReader format + checksum) ---
  [[nodiscard]] std::vector<char> save() const;
  void save_file(const std::string& path) const;

  /// Deserialize; returns null and sets `*error` (if non-null) on any
  /// truncated, corrupted, or structurally invalid input. Never aborts.
  static std::shared_ptr<ClusterModel> load(const std::vector<char>& buffer,
                                            std::string* error = nullptr);
  static std::shared_ptr<ClusterModel> load_file(const std::string& path,
                                                 std::string* error = nullptr);

  ClusterModel(const ClusterModel&) = delete;
  ClusterModel& operator=(const ClusterModel&) = delete;

 private:
  ClusterModel() = default;
  static std::shared_ptr<ClusterModel> build_impl(
      const PointSet& rows, std::span<const PointId> external_ids,
      std::span<const char> skip_rows, u64 id_space, bool identity,
      const dbscan::Clustering& clustering, const std::vector<char>& core_mask,
      const dbscan::DbscanParams& params, const Options& options);
  /// Rebuilds the kd-tree after the flat fields are populated.
  void finalize();

  int dim_ = 0;  // kept for dimension when there are zero core points
  dbscan::DbscanParams params_;
  u64 num_clusters_ = 0;
  u64 epoch_ = 0;
  double core_sample_fraction_ = 1.0;
  std::vector<ClusterId> labels_;       // per original point id
  PointSet core_points_;                // retained core coordinates
  std::vector<PointId> core_ids_;       // original id of each retained core
  std::vector<ClusterId> core_labels_;  // cluster of each retained core
  std::vector<ClusterStats> cluster_stats_;
  std::vector<double> centroids_;       // num_clusters * dim, row-major
  std::unique_ptr<KdTree> tree_;        // over core_points_ (null if empty)
};

}  // namespace sdb::serve
