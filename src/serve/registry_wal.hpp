// RegistryWal — write-ahead log + snapshot compaction for ModelRegistry.
//
// The serving layer's registry is the durability boundary of the whole
// online subsystem: a process death used to lose every mutation since
// construction. The WAL makes the *committed epoch* durable:
//
//   * every mutation appends one checksummed record BEFORE it is applied
//     (write-ahead ordering), and every snapshot publication appends a
//     kPublish record carrying the published epoch — the commit marker;
//   * a restarted registry replays the log only through the LAST kPublish
//     record: mutations after it were never part of a published snapshot,
//     so they are uncommitted and are truncated, and the registry
//     republishes exactly the last committed epoch;
//   * a crash mid-append leaves a torn record at the tail; recovery scans
//     record-by-record, stops at the first record that fails its length or
//     FNV-1a checksum, and truncates the file there — a torn tail can
//     never be read back as data (tests/test_registry_wal.cpp truncates at
//     every byte offset of the final record to prove it).
//
// Record layout (framing handled entirely in this class):
//
//   u32 len | payload (len bytes) | u64 fnv1a(payload)
//
// where payload = u32 type | body. Types: kInsert (body = u32 dim + dim
// f64 coords), kRemove (body = i64 point id), kPublish (body = u64 epoch).
//
// Compaction is generation-based to dodge the classic snapshot/WAL
// double-replay hazard: generation G consists of `snapshot_<G>` (full
// registry state, checksummed) plus `wal_<G>.log` (mutations since).
// compact() writes snapshot_<G+1> via tmp+rename, then starts an empty
// wal_<G+1>.log, then deletes generation G. A crash anywhere in that
// sequence leaves either G fully intact or G+1 fully recoverable — the
// opener picks the highest generation with a valid snapshot and garbage-
// collects the rest.
//
// Crash points (fault/injection.hpp): `wal.crash.mid_append` (torn record
// hits disk, then death), `wal.crash.before_append`, `wal.crash.after_append`,
// `wal.crash.snapshot_rename` (between staging and committing a snapshot).
//
// Replication (src/replica) treats this log as the shipping substrate: a
// position in the stream is (generation, record seq), `snapshot_epoch()` /
// `last_committed_epoch()` give a follower the epoch handshake it needs to
// catch up from a compacted snapshot instead of generation 0, and
// `reset_generation()` lets a follower force its own log to mirror the
// primary's stream coordinates after a snapshot install. An EMPTY directory
// name selects the in-memory mode: the same generation/record/snapshot
// bookkeeping with no files — the replication log of a non-durable replica.
#pragma once

#include <fstream>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "util/common.hpp"

namespace sdb::serve {

enum class WalRecordType : u32 { kInsert = 1, kRemove = 2, kPublish = 3 };

/// One decoded WAL record. Exactly one of the three payload fields is
/// meaningful, selected by `type`.
struct WalRecord {
  WalRecordType type = WalRecordType::kInsert;
  std::vector<double> coords;  ///< kInsert
  i64 point_id = 0;            ///< kRemove
  u64 epoch = 0;               ///< kPublish
};

/// Encode one record's framing-free payload (`u32 type | body`). Shared by
/// the per-record log frames here and the replication batch frames
/// (replica/wal_ship.hpp), so shipped bytes decode with the same code path
/// that validates the on-disk log.
std::vector<char> encode_wal_payload(const WalRecord& rec);
/// Decode one payload; false on any malformed body (callers treat it like a
/// checksum failure).
bool decode_wal_payload(const char* data, size_t size, WalRecord* rec);

class RegistryWal {
 public:
  /// Open `dir` (creating it if absent): locate the newest generation with
  /// a valid snapshot, garbage-collect stale generations and tmp files,
  /// and scan that generation's log — truncating the first torn record and
  /// everything after it. An empty `dir` selects the in-memory mode (no
  /// files touched, nothing survives the process; see file comment).
  explicit RegistryWal(std::string dir);

  /// The records recovered from the current generation's log, in append
  /// order (valid prefix only; the torn tail is already gone).
  [[nodiscard]] const std::vector<WalRecord>& records() const {
    return records_;
  }

  /// The recovered snapshot blob of the current generation, if one exists
  /// (generation 0 has none — it is the empty-state generation).
  [[nodiscard]] const std::optional<std::string>& snapshot() const {
    return snapshot_;
  }

  /// Epoch the current generation's snapshot was taken at (0 when there is
  /// no snapshot). Together with generation() this is the handshake a
  /// replication follower needs to catch up from the compacted snapshot
  /// instead of replaying from generation 0.
  [[nodiscard]] u64 snapshot_epoch() const { return snapshot_epoch_; }

  /// The last epoch this log can prove committed: the newest kPublish
  /// record, or the snapshot's epoch when no kPublish follows it (a
  /// snapshot is always taken at a publish boundary).
  [[nodiscard]] u64 last_committed_epoch() const;

  /// Records currently in the log (== the next record's seq within this
  /// generation — the shipping cursor's second coordinate).
  [[nodiscard]] u64 record_count() const { return records_.size(); }

  /// Drop every record past index `count` (exclusive), in memory AND on
  /// disk. The registry calls this after replay to discard the uncommitted
  /// suffix (mutations after the last kPublish), so a later recovery can
  /// never resurrect mutations this incarnation refused to apply.
  void truncate_to(size_t count);

  // --- append side (writer thread; internally serialized) ---
  void append_insert(std::span<const double> coords);
  void append_remove(i64 point_id);
  void append_publish(u64 epoch);

  /// Rotate to generation G+1 with `snapshot_blob` as its base state (taken
  /// at publish boundary `epoch`) and an empty log, then delete generation
  /// G. Atomic at every step (see file comment). Clears the in-memory
  /// record list — the snapshot subsumes it.
  void compact(const std::string& snapshot_blob, u64 epoch);

  /// Force this log to an arbitrary stream position: generation
  /// `generation` based on `snapshot_blob`@`epoch` (empty blob = the
  /// empty-state base), with an empty record list. Used by replication
  /// followers installing a shipped snapshot so that their own log mirrors
  /// the primary's (generation, seq) coordinates exactly. Same atomicity as
  /// compact().
  void reset_generation(u64 generation, const std::string& snapshot_blob,
                        u64 epoch);

  [[nodiscard]] const std::string& dir() const { return dir_; }
  [[nodiscard]] u64 generation() const { return generation_; }

  // --- observability ---
  /// Bytes of torn tail truncated at open.
  [[nodiscard]] u64 truncated_bytes() const { return truncated_bytes_; }
  /// Stale generations (or orphaned tmp files) deleted at open.
  [[nodiscard]] u64 collected_files() const { return collected_files_; }
  /// Records appended by this process.
  [[nodiscard]] u64 appends() const { return appends_; }

 private:
  [[nodiscard]] bool in_memory() const { return dir_.empty(); }
  [[nodiscard]] std::string log_path(u64 generation) const;
  [[nodiscard]] std::string snapshot_path(u64 generation) const;
  void open_generation();
  void scan_log();
  void append_payload(const std::vector<char>& payload);
  void reset_generation_locked(u64 generation, const std::string& blob,
                               u64 epoch);

  std::string dir_;
  std::mutex mu_;
  u64 generation_ = 0;
  u64 snapshot_epoch_ = 0;
  std::optional<std::string> snapshot_;
  std::vector<WalRecord> records_;
  /// Byte offset of the end of each valid record in the current log —
  /// record i ends at ends_[i]; truncate_to(k) resizes the file to
  /// ends_[k-1].
  std::vector<u64> ends_;
  std::ofstream out_;
  u64 truncated_bytes_ = 0;
  u64 collected_files_ = 0;
  u64 appends_ = 0;
};

}  // namespace sdb::serve
