#include "serve/registry_wal.hpp"

#include <cstring>
#include <filesystem>

#include "fault/injection.hpp"
#include "util/serialize.hpp"

namespace sdb::serve {

namespace fs = std::filesystem;

namespace {

constexpr u64 kSnapshotMagic = 0x534442574c534e50ull;  // "SDBWLSNP"

u64 fnv1a(const char* data, size_t size) {
  u64 h = 1469598103934665603ull;
  for (size_t i = 0; i < size; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

std::vector<char> encode_wal_payload(const WalRecord& rec) {
  BinaryWriter w;
  w.write_u32(static_cast<u32>(rec.type));
  switch (rec.type) {
    case WalRecordType::kInsert:
      w.write_u32(static_cast<u32>(rec.coords.size()));
      for (const double c : rec.coords) w.write_f64(c);
      break;
    case WalRecordType::kRemove:
      w.write_i64(rec.point_id);
      break;
    case WalRecordType::kPublish:
      w.write_u64(rec.epoch);
      break;
  }
  return w.take();
}

bool decode_wal_payload(const char* data, size_t size, WalRecord* rec) {
  if (size < sizeof(u32)) return false;
  BinaryReader r(data, size);
  const u32 type = r.read_u32();
  switch (static_cast<WalRecordType>(type)) {
    case WalRecordType::kInsert: {
      if (r.remaining() < sizeof(u32)) return false;
      const u32 dim = r.read_u32();
      if (r.remaining() != static_cast<u64>(dim) * sizeof(double)) {
        return false;
      }
      rec->type = WalRecordType::kInsert;
      rec->coords.resize(dim);
      std::memcpy(rec->coords.data(), data + r.position(),
                  dim * sizeof(double));
      return true;
    }
    case WalRecordType::kRemove:
      if (r.remaining() != sizeof(i64)) return false;
      rec->type = WalRecordType::kRemove;
      rec->point_id = r.read_i64();
      return true;
    case WalRecordType::kPublish:
      if (r.remaining() != sizeof(u64)) return false;
      rec->type = WalRecordType::kPublish;
      rec->epoch = r.read_u64();
      return true;
  }
  return false;
}

RegistryWal::RegistryWal(std::string dir) : dir_(std::move(dir)) {
  if (in_memory()) return;  // nothing to recover, nothing to open
  fs::create_directories(dir_);
  open_generation();
  scan_log();
  // Append from the scanned (post-truncation) end.
  out_.open(log_path(generation_), std::ios::binary | std::ios::app);
  SDB_CHECK(out_.good(), "RegistryWal cannot open log for append");
}

std::string RegistryWal::log_path(u64 generation) const {
  return (fs::path(dir_) / ("wal_" + std::to_string(generation) + ".log"))
      .string();
}

std::string RegistryWal::snapshot_path(u64 generation) const {
  return (fs::path(dir_) / ("snapshot_" + std::to_string(generation)))
      .string();
}

void RegistryWal::open_generation() {
  // Pick the highest generation whose snapshot verifies; everything else —
  // older generations, tmp files, snapshots torn mid-write — is garbage.
  u64 best_gen = 0;
  u64 best_epoch = 0;
  std::string best_blob;
  bool have_snapshot = false;
  std::vector<std::pair<u64, fs::path>> snapshots;
  std::vector<fs::path> tmp_files;
  std::vector<std::pair<u64, fs::path>> logs;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    const std::string name = entry.path().filename().string();
    if (name.ends_with(".tmp")) {
      tmp_files.push_back(entry.path());
      continue;
    }
    if (name.rfind("snapshot_", 0) == 0) {
      snapshots.emplace_back(std::stoull(name.substr(9)), entry.path());
    } else if (name.rfind("wal_", 0) == 0 && name.ends_with(".log")) {
      const std::string digits = name.substr(4, name.size() - 8);
      logs.emplace_back(std::stoull(digits), entry.path());
    }
  }
  for (const auto& [gen, path] : snapshots) {
    if (gen < best_gen && have_snapshot) continue;
    const std::vector<char> buf = read_file(path.string());
    // snapshot file = magic + epoch + blob bytes + fnv trailer
    if (buf.size() < 3 * sizeof(u64)) continue;
    const size_t payload = buf.size() - sizeof(u64);
    u64 trailer = 0;
    std::memcpy(&trailer, buf.data() + payload, sizeof(u64));
    if (trailer != fnv1a(buf.data(), payload)) continue;
    u64 magic = 0;
    std::memcpy(&magic, buf.data(), sizeof(u64));
    if (magic != kSnapshotMagic) continue;
    if (!have_snapshot || gen > best_gen) {
      best_gen = gen;
      std::memcpy(&best_epoch, buf.data() + sizeof(u64), sizeof(u64));
      best_blob.assign(buf.data() + 2 * sizeof(u64),
                       payload - 2 * sizeof(u64));
      have_snapshot = true;
    }
  }
  generation_ = best_gen;
  if (have_snapshot) {
    snapshot_ = std::move(best_blob);
    snapshot_epoch_ = best_epoch;
  }
  // GC: tmp files, snapshots that are not the winner, logs of other gens.
  for (const fs::path& p : tmp_files) {
    fs::remove(p);
    ++collected_files_;
  }
  for (const auto& [gen, path] : snapshots) {
    if (have_snapshot && gen == best_gen) continue;
    fs::remove(path);
    ++collected_files_;
  }
  for (const auto& [gen, path] : logs) {
    if (gen == generation_) continue;
    fs::remove(path);
    ++collected_files_;
  }
}

void RegistryWal::scan_log() {
  const std::string path = log_path(generation_);
  if (!fs::exists(path)) return;
  const std::vector<char> buf = read_file(path);
  size_t off = 0;
  while (true) {
    if (buf.size() - off < sizeof(u32)) break;
    u32 len = 0;
    std::memcpy(&len, buf.data() + off, sizeof(u32));
    const size_t need = sizeof(u32) + static_cast<size_t>(len) + sizeof(u64);
    if (buf.size() - off < need) break;  // torn tail: record ran past EOF
    const char* payload = buf.data() + off + sizeof(u32);
    u64 trailer = 0;
    std::memcpy(&trailer, payload + len, sizeof(u64));
    if (trailer != fnv1a(payload, len)) break;  // corrupt: stop here
    WalRecord rec;
    if (!decode_wal_payload(payload, len, &rec)) break;
    records_.push_back(std::move(rec));
    off += need;
    ends_.push_back(off);
  }
  if (off < buf.size()) {
    // Torn or corrupt tail: make the on-disk log end exactly at the last
    // valid record so future scans never re-inspect the garbage.
    truncated_bytes_ = buf.size() - off;
    fs::resize_file(path, off);
  }
}

u64 RegistryWal::last_committed_epoch() const {
  for (auto it = records_.rbegin(); it != records_.rend(); ++it) {
    if (it->type == WalRecordType::kPublish) return it->epoch;
  }
  return snapshot_epoch_;
}

void RegistryWal::truncate_to(size_t count) {
  const std::scoped_lock lock(mu_);
  SDB_CHECK(count <= records_.size(), "truncate_to beyond record count");
  if (count == records_.size()) return;
  records_.resize(count);
  if (in_memory()) {
    ends_.resize(count);
    return;
  }
  SDB_CHECK(!out_.is_open() || out_.tellp() >= 0, "log stream poisoned");
  const bool was_open = out_.is_open();
  if (was_open) out_.close();
  const u64 keep = count == 0 ? 0 : ends_[count - 1];
  fs::resize_file(log_path(generation_), keep);
  ends_.resize(count);
  if (was_open) {
    out_.open(log_path(generation_), std::ios::binary | std::ios::app);
    SDB_CHECK(out_.good(), "RegistryWal cannot reopen log after truncate");
  }
}

void RegistryWal::append_payload(const std::vector<char>& payload) {
  const std::scoped_lock lock(mu_);
  if (in_memory()) {
    const u64 prev = ends_.empty() ? 0 : ends_.back();
    ends_.push_back(prev + sizeof(u32) + payload.size() + sizeof(u64));
    ++appends_;
    return;
  }
  BinaryWriter w;
  w.write_u32(static_cast<u32>(payload.size()));
  w.write_bytes(payload.data(), payload.size());
  w.write_u64(fnv1a(payload.data(), payload.size()));
  const std::vector<char>& frame = w.buffer();
  if (SDB_INJECT("wal.crash.mid_append")) {
    // Crash at byte k of the append: a torn prefix reaches disk, the
    // process dies, and recovery truncates it.
    out_.write(frame.data(),
               static_cast<std::streamsize>(frame.size() / 2));
    out_.flush();
    fault::trigger_crash("wal.crash.mid_append");
  }
  SDB_CRASH_POINT("wal.crash.before_append");
  out_.write(frame.data(), static_cast<std::streamsize>(frame.size()));
  out_.flush();
  SDB_CHECK(out_.good(), "RegistryWal append failed");
  SDB_CRASH_POINT("wal.crash.after_append");
  const u64 prev = ends_.empty() ? 0 : ends_.back();
  ends_.push_back(prev + frame.size());
  ++appends_;
}

void RegistryWal::append_insert(std::span<const double> coords) {
  WalRecord rec;
  rec.type = WalRecordType::kInsert;
  rec.coords.assign(coords.begin(), coords.end());
  append_payload(encode_wal_payload(rec));
  const std::scoped_lock lock(mu_);
  records_.push_back(std::move(rec));
}

void RegistryWal::append_remove(i64 point_id) {
  WalRecord rec;
  rec.type = WalRecordType::kRemove;
  rec.point_id = point_id;
  append_payload(encode_wal_payload(rec));
  const std::scoped_lock lock(mu_);
  records_.push_back(rec);
}

void RegistryWal::append_publish(u64 epoch) {
  WalRecord rec;
  rec.type = WalRecordType::kPublish;
  rec.epoch = epoch;
  append_payload(encode_wal_payload(rec));
  const std::scoped_lock lock(mu_);
  records_.push_back(rec);
}

void RegistryWal::compact(const std::string& snapshot_blob, u64 epoch) {
  const std::scoped_lock lock(mu_);
  reset_generation_locked(generation_ + 1, snapshot_blob, epoch);
}

void RegistryWal::reset_generation(u64 generation,
                                   const std::string& snapshot_blob,
                                   u64 epoch) {
  const std::scoped_lock lock(mu_);
  reset_generation_locked(generation, snapshot_blob, epoch);
}

void RegistryWal::reset_generation_locked(u64 generation,
                                          const std::string& snapshot_blob,
                                          u64 epoch) {
  if (!in_memory()) {
    if (!snapshot_blob.empty()) {
      // Stage the snapshot, then commit it with one rename. A crash before
      // the rename leaves the current generation intact (the tmp is GC'd at
      // next open); a crash after it means the new snapshot wins and the
      // old generation is GC'd.
      BinaryWriter w;
      w.write_u64(kSnapshotMagic);
      w.write_u64(epoch);
      w.write_bytes(snapshot_blob.data(), snapshot_blob.size());
      w.write_u64(fnv1a(w.buffer().data(), w.buffer().size()));
      const std::string final_path = snapshot_path(generation);
      const std::string tmp = final_path + ".tmp";
      write_file(tmp, w.buffer());
      SDB_CRASH_POINT("wal.crash.snapshot_rename");
      fs::rename(tmp, final_path);
    }
    // The new generation is now authoritative: fresh empty log, stale
    // generations deleted.
    if (out_.is_open()) out_.close();
    for (const auto& entry : fs::directory_iterator(dir_)) {
      const std::string name = entry.path().filename().string();
      if (name == "wal_" + std::to_string(generation) + ".log") continue;
      if (!snapshot_blob.empty() &&
          name == "snapshot_" + std::to_string(generation)) {
        continue;
      }
      fs::remove(entry.path());
    }
  }
  generation_ = generation;
  records_.clear();
  ends_.clear();
  if (snapshot_blob.empty()) {
    snapshot_.reset();
    snapshot_epoch_ = 0;
  } else {
    snapshot_ = snapshot_blob;
    snapshot_epoch_ = epoch;
  }
  if (!in_memory()) {
    out_.open(log_path(generation_), std::ios::binary | std::ios::trunc);
    SDB_CHECK(out_.good(), "RegistryWal cannot open rotated log");
  }
}

}  // namespace sdb::serve
