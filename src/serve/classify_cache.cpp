#include "serve/classify_cache.hpp"

#include <algorithm>
#include <cstring>

namespace sdb::serve {

ClassifyCache::ClassifyCache(size_t shards, size_t entries_per_shard)
    : entries_per_shard_(entries_per_shard) {
  if (shards > 0 && entries_per_shard > 0) {
    shards_ = std::vector<Shard>(shards);
  }
}

u64 ClassifyCache::hash_point(std::span<const double> point) {
  u64 h = 1469598103934665603ull;
  for (const double v : point) {
    u64 bits;
    std::memcpy(&bits, &v, sizeof(bits));
    for (int i = 0; i < 8; ++i) {
      h ^= (bits >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  }
  return h;
}

bool ClassifyCache::lookup(u64 hash, std::span<const double> point, u64 epoch,
                           ClusterId* label) {
  if (!enabled()) return false;
  Shard& shard = shard_of(hash);
  const std::scoped_lock lock(shard.mu);
  if (shard.epoch != epoch) return false;
  const auto it = shard.map.find(hash);
  if (it == shard.map.end()) return false;
  const Entry& entry = *it->second;
  if (entry.point.size() != point.size() ||
      !std::equal(point.begin(), point.end(), entry.point.begin())) {
    return false;  // hash collision — treat as miss
  }
  *label = entry.label;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);  // touch
  return true;
}

void ClassifyCache::insert(u64 hash, std::span<const double> point, u64 epoch,
                           ClusterId label) {
  if (!enabled()) return;
  Shard& shard = shard_of(hash);
  const std::scoped_lock lock(shard.mu);
  if (shard.epoch != epoch) {
    // New epoch invalidates everything cached under the previous one.
    shard.lru.clear();
    shard.map.clear();
    shard.epoch = epoch;
  }
  const auto it = shard.map.find(hash);
  if (it != shard.map.end()) {
    it->second->label = label;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  if (shard.lru.size() >= entries_per_shard_) {
    shard.map.erase(shard.lru.back().hash);
    shard.lru.pop_back();
  }
  shard.lru.push_front(Entry{hash, {point.begin(), point.end()}, label});
  shard.map.emplace(hash, shard.lru.begin());
}

}  // namespace sdb::serve
