// Approximate k-nearest-neighbor graph — the spatial primitive of the
// high-dimensional KNN-DBSCAN backend.
//
// Every exact index in src/spatial collapses past d≈20: kd-tree and R-tree
// box pruning stops discriminating (every box is "close" in high
// dimensions), and the grid's 3^d neighborhood explodes. KNN-DBSCAN (Chen
// et al., PAPERS.md) recovers DBSCAN semantics from a kNN graph instead:
// core points fall out of the k-th neighbor distance, connectivity out of
// mutual-kNN edges — and an APPROXIMATE graph, built by NN-descent (Dong et
// al.)-style neighbor refinement, costs O(n * k^2 * rounds) distance
// evaluations instead of O(n^2), independent of dimension.
//
// Graph layout: flat rows of k slots per point — neighbor_ids / neighbor_d2
// — each row sorted ascending by (d2, id) with kNoNeighbor padding. Rows
// never contain the point itself. The builder evaluates candidates over the
// same strip-transposed (SoA) snapshot + runtime-dispatched SIMD kernels as
// the spatial indexes (distance_simd.hpp), using the kNN heap-cutoff filter
// idiom from the kd-tree leaf scan, so graph distances are bit-identical to
// the scalar reference on every host.
//
// Determinism: both builders are bit-deterministic for a given (points,
// config) INCLUDING config.threads — exact rows are independent per point,
// and NN-descent's rounds are barriers whose candidate generation reads
// only the previous round's graph while each point's row is updated by
// exactly one task. digest() pins this in tests.
#pragma once

#include <span>
#include <vector>

#include "geom/point_set.hpp"
#include "util/counters.hpp"

namespace sdb::knn {

/// Row padding for points with fewer than k possible neighbors (n-1 < k).
inline constexpr PointId kNoNeighbor = -1;

struct KnnGraphConfig {
  /// Neighbors per point. KNN-DBSCAN needs k >= minpts - 1 to be able to
  /// see any core point (the row plus the point itself is the largest
  /// neighborhood the backend can observe).
  u32 k = 16;

  enum class Build {
    /// Exact rows by brute-force strip scan: O(n^2) evals — the oracle the
    /// descent build is tested against, and the right choice for small n.
    kExact,
    /// NN-descent neighbor refinement: seeded random rows, then rounds of
    /// "compare me against my neighbors' neighbors" local joins until the
    /// update rate falls below termination_frac (or max_rounds). O(n * k^2)
    /// per round, dimension-independent traversal.
    kDescent,
  };
  Build build = Build::kDescent;

  /// Descent: maximum refinement rounds.
  u32 max_rounds = 12;
  /// Descent: per-point cap on the neighbors (forward and reverse) that
  /// participate in a round's local join — NN-descent's sample rate rho*k.
  u32 sample = 16;
  /// Descent: stop when a round improves fewer than this fraction of the
  /// n*k row slots.
  double termination_frac = 0.002;
  /// Seed for the random initial rows and the per-round join sampling.
  u64 seed = 42;
  /// Worker threads (0 = auto, 1 = sequential). Results are identical for
  /// any value; chaos tests pin 1 so fault-plan replay sees one
  /// deterministic site-hit order.
  unsigned threads = 1;
};

class KnnGraph {
 public:
  KnnGraph() = default;
  KnnGraph(size_t n, u32 k)
      : n_(n),
        k_(k),
        ids_(n * k, kNoNeighbor),
        d2_(n * k, 0.0) {}

  [[nodiscard]] size_t size() const { return n_; }
  [[nodiscard]] u32 k() const { return k_; }

  /// Row i's neighbor ids, ascending (d2, id); kNoNeighbor-padded tail.
  [[nodiscard]] std::span<const PointId> row_ids(PointId i) const {
    return {ids_.data() + static_cast<size_t>(i) * k_, k_};
  }
  [[nodiscard]] std::span<const double> row_d2(PointId i) const {
    return {d2_.data() + static_cast<size_t>(i) * k_, k_};
  }
  [[nodiscard]] std::span<PointId> mutable_row_ids(PointId i) {
    return {ids_.data() + static_cast<size_t>(i) * k_, k_};
  }
  [[nodiscard]] std::span<double> mutable_row_d2(PointId i) {
    return {d2_.data() + static_cast<size_t>(i) * k_, k_};
  }

  /// Number of real (non-padding) neighbors in row i.
  [[nodiscard]] u32 row_size(PointId i) const {
    const auto ids = row_ids(i);
    u32 m = 0;
    while (m < k_ && ids[m] != kNoNeighbor) ++m;
    return m;
  }

  /// Squared distance to the k-th neighbor (+inf when the row is short) —
  /// the KNN-DBSCAN core-point statistic.
  [[nodiscard]] double kth_distance2(PointId i) const;

  /// Whether j appears in row i (linear scan; k is small).
  [[nodiscard]] bool has_edge(PointId i, PointId j) const {
    for (const PointId r : row_ids(i)) {
      if (r == j) return true;
      if (r == kNoNeighbor) break;
    }
    return false;
  }

  /// FNV-1a over the row id/d2 bytes — the replay-determinism pin.
  [[nodiscard]] u64 digest() const;

  /// Serialized footprint; prices the pipeline's graph broadcast.
  [[nodiscard]] u64 byte_size() const {
    return ids_.size() * sizeof(PointId) + d2_.size() * sizeof(double) + 16;
  }

 private:
  size_t n_ = 0;
  u32 k_ = 0;
  std::vector<PointId> ids_;
  std::vector<double> d2_;
};

/// Build stats (and the work tally the pipeline prices the build from).
struct KnnGraphBuildStats {
  u32 rounds = 0;          ///< refinement rounds executed (0 for exact)
  u64 updates = 0;         ///< row-slot improvements applied (descent)
  u64 distance_evals = 0;  ///< candidate pairs evaluated
  u64 dropped_edges = 0;   ///< candidates skipped by knn.graph.drop_edge
};

/// Build the kNN graph of `points` per `cfg`. Charges one distance_eval per
/// candidate pair evaluated to the calling thread's counter sink (batched,
/// flushed once), mirroring the spatial-index charging rule.
KnnGraph build_knn_graph(const PointSet& points, const KnnGraphConfig& cfg,
                         KnnGraphBuildStats* stats = nullptr);

/// Recall of `approx` against exact rows: the fraction of (point, neighbor)
/// slots of `exact` recovered by `approx`. 1.0 = every row exact.
double graph_recall(const KnnGraph& exact, const KnnGraph& approx);

}  // namespace sdb::knn
