#include "knn/knn_backend.hpp"

#include <algorithm>
#include <deque>

#include "util/counters.hpp"
#include "util/flat_hash.hpp"

namespace sdb::knn {

KnnEpsGraph KnnEpsGraph::build(const KnnGraph& graph,
                               const dbscan::DbscanParams& params) {
  SDB_CHECK(static_cast<i64>(graph.k()) >= params.minpts - 1,
            "KNN-DBSCAN needs k >= minpts - 1: a row shorter than "
            "minpts - 1 can never certify a core point");
  const size_t n = graph.size();
  const double eps2 = params.eps * params.eps;

  KnnEpsGraph g;
  g.n_ = n;
  g.minpts_ = params.minpts;
  g.core_.assign(n, 0);

  // Pass 1: in-eps prefix of every row -> directed edge lists + core mask.
  // Rows are ascending by (d2, id), so the in-eps prefix is contiguous.
  std::vector<std::vector<std::pair<PointId, std::uint8_t>>> adj(n);
  for (size_t i = 0; i < n; ++i) {
    const auto pid = static_cast<PointId>(i);
    const auto ids = graph.row_ids(pid);
    const auto d2s = graph.row_d2(pid);
    u32 in_eps = 0;
    for (u32 s = 0; s < graph.k(); ++s) {
      if (ids[s] == kNoNeighbor || d2s[s] > eps2) break;
      ++in_eps;
      adj[i].emplace_back(ids[s], kFwd);
      adj[static_cast<size_t>(ids[s])].emplace_back(pid, kRev);
    }
    // Core: the point itself plus its in-eps row reaches minpts.
    if (1 + static_cast<i64>(in_eps) >= params.minpts) g.core_[i] = 1;
  }

  // Pass 2: per-row sort by target and OR the flags of duplicate targets
  // (an edge seen both forward and reverse becomes kMutual), then pack CSR.
  g.offsets_.assign(n + 1, 0);
  u64 total = 0;
  for (size_t i = 0; i < n; ++i) {
    auto& row = adj[i];
    std::sort(row.begin(), row.end());
    size_t w = 0;
    for (size_t r = 0; r < row.size(); ++r) {
      if (w > 0 && row[w - 1].first == row[r].first) {
        row[w - 1].second |= row[r].second;
      } else {
        row[w++] = row[r];
      }
    }
    row.resize(w);
    total += w;
    g.offsets_[i + 1] = total;
  }
  g.targets_.resize(total);
  g.flags_.resize(total);
  for (size_t i = 0; i < n; ++i) {
    u64 at = g.offsets_[i];
    for (const auto& [t, f] : adj[i]) {
      g.targets_[at] = t;
      g.flags_[at] = f;
      ++at;
    }
  }
  return g;
}

u64 KnnEpsGraph::num_core() const {
  u64 c = 0;
  for (const char b : core_) c += b != 0 ? 1 : 0;
  return c;
}

u64 KnnEpsGraph::digest() const {
  u64 h = 1469598103934665603ull;
  auto fold = [&h](const void* data, size_t size) {
    const auto* bytes = static_cast<const unsigned char*>(data);
    for (size_t b = 0; b < size; ++b) {
      h ^= bytes[b];
      h *= 1099511628211ull;
    }
  };
  fold(&n_, sizeof(n_));
  fold(&minpts_, sizeof(minpts_));
  fold(offsets_.data(), offsets_.size() * sizeof(u64));
  fold(targets_.data(), targets_.size() * sizeof(PointId));
  fold(flags_.data(), flags_.size());
  fold(core_.data(), core_.size());
  return h;
}

namespace {

/// The expansion rule shared by both engines: from a CORE point, follow an
/// edge to j when j is a border candidate (any direction proves d <= eps)
/// or the edge is mutual (core-core connectivity).
inline bool expands_to(const KnnEpsGraph& g, PointId j, std::uint8_t flags) {
  return !g.is_core(j) || flags == KnnEpsGraph::kMutual;
}

}  // namespace

dbscan::Clustering knn_dbscan(const KnnEpsGraph& graph) {
  const size_t n = graph.size();
  dbscan::Clustering out;
  out.labels.assign(n, kNoise);
  std::deque<PointId> frontier;
  for (size_t p = 0; p < n; ++p) {
    const auto pid = static_cast<PointId>(p);
    if (!graph.is_core(pid) || out.labels[p] != kNoise) continue;
    const auto cluster = static_cast<ClusterId>(out.num_clusters++);
    out.labels[p] = cluster;
    frontier.clear();
    frontier.push_back(pid);
    while (!frontier.empty()) {
      const PointId q = frontier.front();
      frontier.pop_front();
      const auto targets = graph.neighbors(q);
      const auto flags = graph.edge_flags(q);
      for (size_t e = 0; e < targets.size(); ++e) {
        const PointId j = targets[e];
        if (!expands_to(graph, j, flags[e])) continue;
        if (out.labels[static_cast<size_t>(j)] != kNoise) continue;
        out.labels[static_cast<size_t>(j)] = cluster;
        // Only core points extend the frontier; borders are claimed leaves.
        if (graph.is_core(j)) frontier.push_back(j);
      }
    }
  }
  return out;
}

dbscan::LocalClusterResult local_knn_dbscan(
    const KnnEpsGraph& graph, const dbscan::Partitioning& partitioning,
    PartitionId partition, const LocalKnnDbscanConfig& config) {
  using dbscan::PartialCluster;
  using dbscan::SeedStrategy;
  SDB_CHECK(partition >= 0 &&
                static_cast<u32>(partition) < partitioning.num_partitions,
            "partition id out of range");
  const auto& my_points = partitioning.parts[static_cast<size_t>(partition)];
  const auto& owner = partitioning.owner;

  dbscan::LocalClusterResult result;
  result.partition = partition;

  // Same Hashtable / Queue structure (and counter charging) as local_dbscan;
  // the eps-neighborhood "query" is a CSR row read, so the spatial work was
  // all prepaid by the graph build's distance_evals.
  FlatIdMap<ClusterId> membership(my_points.size() * 2 + 16);
  FlatIdSet visited(my_points.size() * 2 + 16);

  std::deque<PointId> frontier;
  u64 frontier_peak = 0;
  WorkCounters tally;

  std::vector<char> seed_placed(partitioning.num_partitions, 0);
  std::vector<PartitionId> seed_dirty;

  for (const PointId p : my_points) {
    tally.hash_ops += 1;
    if (visited.contains(p)) continue;
    visited.insert(p);
    tally.hash_ops += 1;
    tally.points_processed += 1;

    if (!graph.is_core(p)) {
      // Not core under the GLOBAL mask: provisional noise. If a local
      // cluster claims it below it is promoted to border; if only a foreign
      // cluster reaches it, the driver merge adopts it via its seed record
      // — exactly the exact path's noise/border life cycle.
      result.noise.push_back(p);
      continue;
    }

    result.core_points.push_back(p);
    PartialCluster pc;
    pc.partition = partition;
    pc.uid = PartialCluster::make_uid(partition,
                                      static_cast<u32>(result.clusters.size()));
    pc.members.push_back(p);
    membership.put(p, static_cast<ClusterId>(pc.uid));
    tally.hash_ops += 1;

    for (const PartitionId d : seed_dirty) {
      seed_placed[static_cast<size_t>(d)] = 0;
    }
    seed_dirty.clear();
    FlatIdSet seeds_seen;

    FlatIdSet enqueued(graph.neighbors(p).size() * 2 + 16);
    frontier.clear();
    auto enqueue = [&](PointId r) {
      tally.hash_ops += 1;
      if (owner[static_cast<size_t>(r)] == partition &&
          membership.find(r) != nullptr) {
        return;
      }
      tally.hash_ops += 1;
      if (!enqueued.insert(r)) return;
      frontier.push_back(r);
      tally.queue_ops += 1;
    };
    auto expand = [&](PointId q) {
      const auto targets = graph.neighbors(q);
      const auto flags = graph.edge_flags(q);
      for (size_t e = 0; e < targets.size(); ++e) {
        if (expands_to(graph, targets[e], flags[e])) enqueue(targets[e]);
      }
    };
    expand(p);
    frontier_peak = std::max<u64>(frontier_peak, frontier.size());

    while (!frontier.empty()) {
      const PointId q = frontier.front();
      frontier.pop_front();
      tally.queue_ops += 1;

      const PartitionId q_owner = owner[static_cast<size_t>(q)];
      if (q_owner != partition) {
        tally.seed_ops += 1;
        switch (config.seed_strategy) {
          case SeedStrategy::kOnePerPartition:
            if (!seed_placed[static_cast<size_t>(q_owner)]) {
              seed_placed[static_cast<size_t>(q_owner)] = 1;
              seed_dirty.push_back(q_owner);
              pc.seeds.push_back(q);
            }
            break;
          case SeedStrategy::kAllForeign:
            tally.hash_ops += 1;
            if (seeds_seen.insert(q)) pc.seeds.push_back(q);
            break;
        }
        continue;  // never expand foreign points: no peer communication
      }

      tally.hash_ops += 1;
      if (!visited.contains(q)) {
        visited.insert(q);
        tally.hash_ops += 1;
        tally.points_processed += 1;
        if (graph.is_core(q)) {
          result.core_points.push_back(q);
          expand(q);
          frontier_peak = std::max<u64>(frontier_peak, frontier.size());
        }
      }

      tally.hash_ops += 1;
      if (membership.find(q) == nullptr) {
        membership.put(q, static_cast<ClusterId>(pc.uid));
        tally.hash_ops += 1;
        pc.members.push_back(q);
      }
    }
    result.clusters.push_back(std::move(pc));
  }

  // Noise -> border promotion cleanup, as in local_dbscan.
  std::vector<PointId> true_noise;
  true_noise.reserve(result.noise.size());
  for (const PointId p : result.noise) {
    tally.hash_ops += 1;
    if (membership.find(p) == nullptr) true_noise.push_back(p);
  }
  result.noise = std::move(true_noise);
  result.seed_edges = flatten_seed_edges(result);
  tally.frontier_peak = frontier_peak;
  counters::add(tally);
  return result;
}

}  // namespace sdb::knn
