// KNN-DBSCAN — DBSCAN semantics recovered from a kNN graph (Chen et al.,
// PAPERS.md), the pipeline's high-dimensional backend.
//
// Exact DBSCAN needs eps-range queries, and every exact spatial index
// collapses past d≈20. KNN-DBSCAN substitutes the kNN graph:
//
//   * CORE: p is core iff |N_eps(p)| >= minpts, and the largest in-eps
//     neighborhood the graph can observe is p itself plus its row, so
//     p is core iff 1 + |{j in row(p) : d2(p,j) <= eps^2}| >= minpts.
//     This requires k >= minpts - 1 (checked at build).
//   * CONNECTIVITY: two core points are density-connected through a MUTUAL
//     in-eps edge only (each appears in the other's row). Mutuality makes
//     the core-core relation symmetric — without it, approximate rows would
//     make reachability depend on traversal direction and the partitioned
//     sweep could diverge from the single-node one.
//   * BORDER: a non-core point joins a cluster through an in-eps edge in
//     EITHER direction to one of its cores (a border point need not appear
//     in the core's row; its own row pointing at the core is just as valid
//     evidence of d <= eps).
//
// The same rule drives both the single-node reference (knn_dbscan) and the
// partitioned executor kernel (local_knn_dbscan), so the two engines agree
// exactly; approximation error relative to true DBSCAN enters only through
// the graph build and is measured by the disagreement harness
// (knn/disagreement.hpp).
#pragma once

#include <cstdint>

#include "core/dbscan.hpp"
#include "core/local_dbscan.hpp"
#include "core/partial_cluster.hpp"
#include "core/partitioners.hpp"
#include "knn/knn_graph.hpp"

namespace sdb::knn {

/// The in-eps adjacency + core facts derived from a kNN graph for one
/// (eps, minpts): a CSR over undirected in-eps edges, each tagged with the
/// direction(s) it was observed in, plus the global core mask. Built once on
/// the driver and broadcast — executors share one consistent view of
/// coreness, which is what lets merge_partial_clusters run unchanged.
class KnnEpsGraph {
 public:
  /// Edge direction flags: kFwd = target appears in source's row,
  /// kRev = source appears in target's row, kMutual = both.
  static constexpr std::uint8_t kFwd = 1;
  static constexpr std::uint8_t kRev = 2;
  static constexpr std::uint8_t kMutual = kFwd | kRev;

  /// Derive the eps-graph from `graph` rows. SDB_CHECKs
  /// k >= minpts - 1 (smaller k can never certify a core point).
  static KnnEpsGraph build(const KnnGraph& graph,
                           const dbscan::DbscanParams& params);

  [[nodiscard]] size_t size() const { return n_; }
  [[nodiscard]] i64 minpts() const { return minpts_; }

  [[nodiscard]] bool is_core(PointId i) const {
    return core_[static_cast<size_t>(i)] != 0;
  }
  [[nodiscard]] const std::vector<char>& core_mask() const { return core_; }
  [[nodiscard]] u64 num_core() const;

  /// Row i's in-eps neighbors, ascending by id, with parallel flags.
  [[nodiscard]] std::span<const PointId> neighbors(PointId i) const {
    const auto b = offsets_[static_cast<size_t>(i)];
    return {targets_.data() + b, offsets_[static_cast<size_t>(i) + 1] - b};
  }
  [[nodiscard]] std::span<const std::uint8_t> edge_flags(PointId i) const {
    const auto b = offsets_[static_cast<size_t>(i)];
    return {flags_.data() + b, offsets_[static_cast<size_t>(i) + 1] - b};
  }

  [[nodiscard]] u64 num_edges() const { return targets_.size(); }

  /// FNV-1a over the CSR + core mask — pins executor-view consistency and
  /// faulted-build replay in tests.
  [[nodiscard]] u64 digest() const;

  /// Serialized footprint; prices the pipeline's broadcast.
  [[nodiscard]] u64 byte_size() const {
    return offsets_.size() * sizeof(u64) + targets_.size() * sizeof(PointId) +
           flags_.size() + core_.size() + 32;
  }

 private:
  size_t n_ = 0;
  i64 minpts_ = 0;
  std::vector<u64> offsets_;    ///< n + 1 row offsets
  std::vector<PointId> targets_;
  std::vector<std::uint8_t> flags_;
  std::vector<char> core_;
};

/// Single-node KNN-DBSCAN reference: BFS over the eps-graph in ascending
/// point order, clusters numbered in discovery order, borders claimed by
/// the first cluster to reach them. Deterministic; the partitioned engine
/// is tested against it.
dbscan::Clustering knn_dbscan(const KnnEpsGraph& graph);

struct LocalKnnDbscanConfig {
  dbscan::SeedStrategy seed_strategy = dbscan::SeedStrategy::kAllForeign;
};

/// Executor kernel of the KNN backend — local_dbscan with the broadcast
/// eps-graph substituted for the broadcast spatial index. Same BFS, same
/// SEED placement, same LocalClusterResult wire shape, so codec /
/// checkpoint / merge machinery is reused unchanged. Coreness comes from
/// the graph's global mask (never recomputed locally), which keeps every
/// executor's facts mutually consistent for the merge.
dbscan::LocalClusterResult local_knn_dbscan(
    const KnnEpsGraph& graph, const dbscan::Partitioning& partitioning,
    PartitionId partition, const LocalKnnDbscanConfig& config);

}  // namespace sdb::knn
