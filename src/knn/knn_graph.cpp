#include "knn/knn_graph.hpp"

#include <algorithm>
#include <bit>
#include <limits>
#include <queue>
#include <thread>

#include "fault/injection.hpp"
#include "geom/distance.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace sdb::knn {

double KnnGraph::kth_distance2(PointId i) const {
  const u32 m = row_size(i);
  if (m < k_) return std::numeric_limits<double>::infinity();
  return row_d2(i)[k_ - 1];
}

u64 KnnGraph::digest() const {
  u64 h = 1469598103934665603ull;
  auto fold = [&h](const void* data, size_t size) {
    const auto* bytes = static_cast<const unsigned char*>(data);
    for (size_t b = 0; b < size; ++b) {
      h ^= bytes[b];
      h *= 1099511628211ull;
    }
  };
  fold(&n_, sizeof(n_));
  fold(&k_, sizeof(k_));
  fold(ids_.data(), ids_.size() * sizeof(PointId));
  fold(d2_.data(), d2_.size() * sizeof(double));
  return h;
}

namespace {

/// Bounded max-heap over lexicographic (d2, id) pairs backing one graph row
/// during construction — the same smaller-id tie-break at the k-th distance
/// as SpatialIndex::knn_query, so exact rows are unique and build-order
/// independent.
struct RowHeap {
  using Entry = std::pair<double, PointId>;
  std::priority_queue<Entry> heap;
  size_t cap = 0;

  void offer(double d2, PointId id) {
    const Entry cand{d2, id};
    if (heap.size() < cap) {
      heap.push(cand);
    } else if (cand < heap.top()) {
      heap.pop();
      heap.push(cand);
    }
  }
  [[nodiscard]] bool full() const { return heap.size() == cap; }
  [[nodiscard]] double worst() const { return heap.top().first; }

  /// Drain ascending into a graph row (padding already in place).
  void drain(std::span<PointId> ids, std::span<double> d2s) {
    for (size_t i = heap.size(); i-- > 0;) {
      ids[i] = heap.top().second;
      d2s[i] = heap.top().first;
      heap.pop();
    }
  }
};

unsigned resolve_threads(unsigned requested, size_t n) {
  if (requested == 1) return 1;
  unsigned t = requested != 0 ? requested
                              : std::max(1u, std::thread::hardware_concurrency());
  // Below ~4k points the task-spawn overhead beats the parallelism.
  if (n < 4096) return 1;
  return std::min<unsigned>(t, 16);
}

/// Run fn(begin, end, chunk_index) over [0, n) in contiguous chunks —
/// sequential inline when threads == 1, else on a pool with a barrier.
/// Chunk boundaries are identical either way, so per-chunk tallies are too.
template <typename Fn>
void parallel_chunks(size_t n, unsigned threads, Fn&& fn) {
  if (threads <= 1 || n == 0) {
    fn(size_t{0}, n, size_t{0});
    return;
  }
  const size_t chunks = std::min<size_t>(threads * 4, (n + 255) / 256);
  const size_t per = (n + chunks - 1) / chunks;
  ThreadPool pool(threads);
  for (size_t c = 0; c < chunks; ++c) {
    const size_t begin = c * per;
    const size_t end = std::min(n, begin + per);
    if (begin >= end) break;
    pool.submit([&fn, begin, end, c] { fn(begin, end, c); });
  }
  pool.wait_idle();
}

/// Exact rows: brute-force strip scan per point with the kNN heap-cutoff
/// kernel filter (the kd-tree leaf idiom — see KdTree::knn_query). One
/// distance_eval per candidate row examined (n-1 per point: self excluded).
void build_exact(const PointSet& points, const KnnGraphConfig& cfg,
                 KnnGraph& graph, KnnGraphBuildStats& stats) {
  const size_t n = points.size();
  const size_t dim = static_cast<size_t>(points.dim());
  std::vector<double> strips(strip_padded_len(n, dim), 0.0);
  for (size_t i = 0; i < n; ++i) {
    strip_store_row(strips.data(), i, points[static_cast<PointId>(i)]);
  }
  const simd::StripKernelFn kernel = simd::detail::strip_kernel();
  const unsigned threads = resolve_threads(cfg.threads, n);

  parallel_chunks(n, threads, [&](size_t begin, size_t end, size_t) {
    RowHeap row;
    for (size_t p = begin; p < end; ++p) {
      const std::span<const double> q = points[static_cast<PointId>(p)];
      row.cap = cfg.k;
      for (size_t i = 0; i < n;) {
        const size_t m = std::min(kDistanceStrip, n - i);
        if (row.full() && std::isfinite(row.worst())) {
          const double cutoff = row.worst();
          u32 mask = kernel(q.data(), dim, cutoff,
                            strips.data() + (i / kDistanceStrip) *
                                (kDistanceStrip * dim),
                            m);
          while (mask != 0) {
            const u32 j = static_cast<u32>(std::countr_zero(mask));
            const auto id = static_cast<PointId>(i + j);
            if (id != static_cast<PointId>(p)) {
              row.offer(squared_distance_uncounted(q, points[id]), id);
            }
            mask &= mask - 1;
          }
        } else {
          for (size_t j = 0; j < m; ++j) {
            const auto id = static_cast<PointId>(i + j);
            if (id == static_cast<PointId>(p)) continue;
            row.offer(squared_distance_uncounted(q, points[id]), id);
          }
        }
        i += m;
      }
      row.drain(graph.mutable_row_ids(static_cast<PointId>(p)),
                graph.mutable_row_d2(static_cast<PointId>(p)));
    }
  });
  stats.distance_evals += n * (n - 1);
}

/// Cutoff-abandoned candidate distance for the descent join: returns the
/// exact squared distance when it is <= cutoff, or any partial sum already
/// > cutoff once that is provable (the caller must then reject WITHOUT
/// storing the value — the true distance is >= the partial, so the
/// candidate is strictly worse than the cutoff slot either way). When the
/// full sum is computed it is the same ascending unfused mul+add sequence
/// as squared_distance_uncounted (project-wide -ffp-contract=off), so
/// stored row values are bit-identical to the unabandoned build.
double squared_distance_abandoned(std::span<const double> a,
                                  std::span<const double> b, double cutoff) {
  double s = 0.0;
  size_t i = 0;
  const size_t dim = a.size();
  while (i + 8 <= dim) {
    for (size_t j = 0; j < 8; ++j) {
      const double d = a[i + j] - b[i + j];
      s += d * d;
    }
    i += 8;
    if (s > cutoff) return s;
  }
  for (; i < dim; ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

/// Sorted-row insertion for descent: keep row ascending (d2, id), return
/// whether the candidate displaced a slot. Skips ids already present.
/// `flags` is the row's per-slot new/old bits for the incremental local
/// join — it shifts in lockstep with the slots and an inserted entry is
/// always marked new.
bool row_insert(std::span<PointId> ids, std::span<double> d2s,
                std::span<unsigned char> flags, u32 k, double d2,
                PointId id) {
  // Fast reject before the O(k) dedup scan: a full row turns away any
  // candidate that does not beat the worst (d2, id) slot — including a
  // candidate already present at that exact slot, which the scan below
  // would also reject.
  if (ids[k - 1] != kNoNeighbor &&
      std::pair{d2, id} >= std::pair{d2s[k - 1], ids[k - 1]}) {
    return false;
  }
  u32 m = 0;
  while (m < k && ids[m] != kNoNeighbor) {
    if (ids[m] == id) return false;
    ++m;
  }
  if (m == k) {
    // Full: must beat the worst (d2, id) pair.
    if (std::pair{d2, id} >= std::pair{d2s[k - 1], ids[k - 1]}) return false;
    --m;  // the worst slot is overwritten by the shift below
  }
  // Shift the tail up and insert in (d2, id) order.
  u32 pos = m;
  while (pos > 0 &&
         std::pair{d2s[pos - 1], ids[pos - 1]} > std::pair{d2, id}) {
    d2s[pos] = d2s[pos - 1];
    ids[pos] = ids[pos - 1];
    flags[pos] = flags[pos - 1];
    --pos;
  }
  d2s[pos] = d2;
  ids[pos] = id;
  flags[pos] = 1;
  return true;
}

/// NN-descent refinement (Dong et al., incremental local join): every
/// round, each point t gathers candidates from its sampled forward +
/// reverse neighborhood's neighborhoods (read from the PREVIOUS round's
/// rows — the double buffer is what makes the build bit-deterministic for
/// any thread count), evaluates the ones reachable through at least one
/// new edge, and improves its own row in place.
void build_descent(const PointSet& points, const KnnGraphConfig& cfg,
                   KnnGraph& graph, KnnGraphBuildStats& stats) {
  const size_t n = points.size();
  const u32 k = cfg.k;
  const unsigned threads = resolve_threads(cfg.threads, n);
  const u64 init_seed = derive_seed(cfg.seed, "knn.init");

  // Per-slot new/old bits for the incremental local join (Dong et al.): a
  // slot is "new" until the round that exploits it as a join pivot, and a
  // candidate pair is evaluated only when at least one of its two
  // connecting edges is new. Without this, late rounds re-propose (and
  // re-evaluate) almost exactly the candidate sets of earlier rounds —
  // the rows barely change, so neither do their neighbors-of-neighbors.
  std::vector<unsigned char> new_flag(n * k, 0);
  const auto row_flags = [&](size_t p) {
    return std::span<unsigned char>(new_flag.data() + p * k, k);
  };

  // --- Seeded random initial rows (exact when n - 1 <= k). ---
  std::vector<u64> chunk_evals(threads * 4 + 1, 0);
  parallel_chunks(n, threads, [&](size_t begin, size_t end, size_t chunk) {
    std::vector<PointId> picks;
    u64 evals = 0;
    for (size_t p = begin; p < end; ++p) {
      const auto pid = static_cast<PointId>(p);
      picks.clear();
      if (n - 1 <= k) {
        for (size_t j = 0; j < n; ++j) {
          if (j != p) picks.push_back(static_cast<PointId>(j));
        }
      } else {
        // Per-point independent stream: identical rows for any threading.
        Rng rng(init_seed ^ (0x9e3779b97f4a7c15ull * (p + 1)));
        while (picks.size() < k) {
          const auto c = static_cast<PointId>(rng.uniform_index(n));
          if (c == pid) continue;
          if (std::find(picks.begin(), picks.end(), c) != picks.end()) {
            continue;
          }
          picks.push_back(c);
        }
      }
      auto ids = graph.mutable_row_ids(pid);
      auto d2s = graph.mutable_row_d2(pid);
      for (const PointId c : picks) {
        ++evals;
        row_insert(ids, d2s, row_flags(p), k,
                   squared_distance_uncounted(points[pid], points[c]), c);
      }
    }
    chunk_evals[chunk] += evals;
  });
  for (const u64 e : chunk_evals) stats.distance_evals += e;

  if (n - 1 <= k) return;  // rows are already exact

  // --- Refinement rounds. ---
  std::vector<PointId> prev_ids;
  std::vector<unsigned char> prev_flag;
  std::vector<std::vector<std::pair<PointId, unsigned char>>> rev(n);
  const u64 target_slots = static_cast<u64>(n) * k;
  for (u32 round = 0; round < cfg.max_rounds; ++round) {
    ++stats.rounds;
    // Snapshot the rows + new/old bits: candidate generation reads prev,
    // updates land in the live graph (each row written only by its owner
    // chunk).
    prev_ids.assign(n * k, kNoNeighbor);
    for (size_t p = 0; p < n; ++p) {
      const auto row = graph.row_ids(static_cast<PointId>(p));
      std::copy(row.begin(), row.end(), prev_ids.begin() + p * k);
    }
    prev_flag = new_flag;
    // Reverse adjacency from the snapshot, capped at `sample` per point
    // (sources arrive in ascending id order — deterministic cap). Each rev
    // entry carries its edge's new bit. Slots that participate in this
    // round's join — the sampled forward prefix of every row plus every
    // edge accepted into a rev list — are marked old in the live bits:
    // they have now been fully exploited as pivots, and only a future
    // insertion may make them new again. Capped-out rev edges keep their
    // bit and retry in a later round.
    for (auto& r : rev) r.clear();
    const u32 fwd_sample = std::min(k, cfg.sample);
    for (size_t p = 0; p < n; ++p) {
      for (u32 s = 0; s < k; ++s) {
        const PointId j = prev_ids[p * k + s];
        if (j == kNoNeighbor) break;
        auto& r = rev[static_cast<size_t>(j)];
        if (r.size() < cfg.sample) {
          r.emplace_back(static_cast<PointId>(p), prev_flag[p * k + s]);
          new_flag[p * k + s] = 0;
        }
        if (s < fwd_sample) new_flag[p * k + s] = 0;
      }
    }

    std::vector<u64> chunk_updates(threads * 4 + 1, 0);
    std::vector<u64> chunk_evals2(threads * 4 + 1, 0);
    std::vector<u64> chunk_drops(threads * 4 + 1, 0);
    parallel_chunks(n, threads, [&](size_t begin, size_t end, size_t chunk) {
      // B(t): sampled fwd + rev neighbors, each with its edge's new bit.
      std::vector<std::pair<PointId, unsigned char>> bucket;
      std::vector<std::pair<PointId, unsigned char>> candidates;
      u64 updates = 0;
      u64 evals = 0;
      u64 drops = 0;
      for (size_t t = begin; t < end; ++t) {
        const auto tid = static_cast<PointId>(t);
        bucket.clear();
        for (u32 s = 0; s < fwd_sample; ++s) {
          const PointId j = prev_ids[t * k + s];
          if (j == kNoNeighbor) break;
          bucket.emplace_back(j, prev_flag[t * k + s]);
        }
        for (const auto& [j, f] : rev[t]) bucket.emplace_back(j, f);

        // A candidate (t, c) reached through pivot edges (t~j, j~c) is
        // evaluated only if at least one of the two edges is new — an
        // old/old pair was already proposed the round both edges turned
        // old. Duplicates keep the OR of their path bits.
        candidates.clear();
        for (const auto& [j, fj] : bucket) {
          candidates.emplace_back(j, fj);  // rev members may beat the row
          const size_t jb = static_cast<size_t>(j) * k;
          for (u32 s = 0; s < fwd_sample; ++s) {
            const PointId c = prev_ids[jb + s];
            if (c == kNoNeighbor) break;
            candidates.emplace_back(
                c, static_cast<unsigned char>(fj | prev_flag[jb + s]));
          }
          for (const auto& [c, fc] : rev[static_cast<size_t>(j)]) {
            candidates.emplace_back(c,
                                    static_cast<unsigned char>(fj | fc));
          }
        }
        std::sort(candidates.begin(), candidates.end(),
                  [](const auto& a, const auto& b) {
                    return a.first != b.first ? a.first < b.first
                                              : a.second > b.second;
                  });
        candidates.erase(
            std::unique(candidates.begin(), candidates.end(),
                        [](const auto& a, const auto& b) {
                          return a.first == b.first;
                        }),
            candidates.end());

        auto ids = graph.mutable_row_ids(tid);
        auto d2s = graph.mutable_row_d2(tid);
        const auto flags = row_flags(t);
        for (const auto& [c, fresh] : candidates) {
          if (c == tid) continue;
          if (!fresh) continue;  // old/old pair: already proposed before
          // Fault site: drop this candidate edge on the floor. NN-descent
          // is self-healing — later rounds re-propose surviving paths — so
          // a faulted build still converges to a usable graph (pinned by
          // the knn chaos cells).
          if (SDB_INJECT("knn.graph.drop_edge")) {
            ++drops;
            continue;
          }
          ++evals;
          // A full row's worst slot bounds what can still matter: abandon
          // the distance once the partial sum exceeds it, and reject
          // without touching the row (strictly worse than the worst slot
          // no matter the tie-break id). One eval is charged per candidate
          // examined regardless — the unified counter contract.
          const double cutoff = ids[k - 1] != kNoNeighbor
                                    ? d2s[k - 1]
                                    : std::numeric_limits<double>::infinity();
          const double d2 = squared_distance_abandoned(points[tid],
                                                       points[c], cutoff);
          if (d2 > cutoff) continue;
          if (row_insert(ids, d2s, flags, k, d2, c)) {
            ++updates;
          }
        }
      }
      chunk_updates[chunk] += updates;
      chunk_evals2[chunk] += evals;
      chunk_drops[chunk] += drops;
    });
    u64 round_updates = 0;
    for (const u64 u : chunk_updates) round_updates += u;
    for (const u64 e : chunk_evals2) stats.distance_evals += e;
    for (const u64 d : chunk_drops) stats.dropped_edges += d;
    stats.updates += round_updates;
    if (static_cast<double>(round_updates) <
        cfg.termination_frac * static_cast<double>(target_slots)) {
      break;
    }
  }
}

}  // namespace

KnnGraph build_knn_graph(const PointSet& points, const KnnGraphConfig& cfg,
                         KnnGraphBuildStats* stats_out) {
  SDB_CHECK(cfg.k > 0, "kNN graph needs k > 0");
  const size_t n = points.size();
  KnnGraph graph(n, cfg.k);
  KnnGraphBuildStats stats;
  if (n > 1) {
    if (cfg.build == KnnGraphConfig::Build::kExact || n - 1 <= cfg.k) {
      build_exact(points, cfg, graph, stats);
    } else {
      build_descent(points, cfg, graph, stats);
    }
  }
  // One flush on the calling thread (worker tasks tally into plain chunk
  // slots, not thread-local sinks, so totals are exact and deterministic).
  counters::distance_evals(stats.distance_evals);
  if (stats_out != nullptr) *stats_out = stats;
  return graph;
}

double graph_recall(const KnnGraph& exact, const KnnGraph& approx) {
  SDB_CHECK(exact.size() == approx.size(), "graph size mismatch");
  if (exact.size() == 0) return 1.0;
  u64 total = 0;
  u64 hit = 0;
  for (size_t p = 0; p < exact.size(); ++p) {
    const auto pid = static_cast<PointId>(p);
    for (const PointId j : exact.row_ids(pid)) {
      if (j == kNoNeighbor) break;
      ++total;
      if (approx.has_edge(pid, j)) ++hit;
    }
  }
  return total == 0 ? 1.0 : static_cast<double>(hit) / static_cast<double>(total);
}

}  // namespace sdb::knn
