// Disagreement-bound harness: quantifies how far KNN-DBSCAN's graph
// approximation lands from exact DBSCAN — the extension of the cross-index
// parity sweep (tests/test_index_parity) to a backend that is allowed to
// disagree, but only within an asserted bound.
//
// Exact DBSCAN over the four spatial indexes must agree point-for-point;
// KNN-DBSCAN's only approximation is the graph (missing rows hide in-eps
// edges), so its clustering may differ. The harness measures that gap with:
//   * the adjusted Rand index (chance-corrected; the plain Rand index
//     saturates near 1 for many-cluster partitions and would hide real
//     disagreement),
//   * the label-disagreement count under greedy best-overlap cluster
//     matching, and
//   * core / noise set symmetric differences.
// Tests and bench_knn assert bounds on these; well-separated fixtures with
// an exact graph must score ZERO disagreement (the parity case).
#pragma once

#include "core/dbscan.hpp"
#include "geom/point_set.hpp"
#include "knn/knn_backend.hpp"

namespace sdb::knn {

struct DisagreementReport {
  u64 points = 0;
  double ari = 1.0;  ///< adjusted_rand_index(exact, approx), noise=singletons

  /// Points clustered in both but outside the greedy best-overlap matching
  /// of exact clusters onto approx clusters (an upper bound on the optimal
  /// matching's error — pessimistic, never optimistic).
  u64 label_disagreements = 0;
  u64 noise_mismatches = 0;  ///< noise in exactly one of the two
  u64 core_mismatches = 0;   ///< core in exactly one (0 when masks match)

  /// Fraction of points involved in any disagreement.
  [[nodiscard]] double disagreement_frac() const {
    if (points == 0) return 0.0;
    return static_cast<double>(label_disagreements + noise_mismatches) /
           static_cast<double>(points);
  }
  /// The asserted bound: ARI at least `min_ari` AND no more than
  /// `max_disagreement_frac` of points disagreeing.
  [[nodiscard]] bool within(double min_ari,
                            double max_disagreement_frac) const {
    return ari >= min_ari && disagreement_frac() <= max_disagreement_frac;
  }
};

/// Compare two clusterings of the same dataset (exact reference first).
/// Core masks are optional (empty spans skip the core_mismatches term).
DisagreementReport measure_disagreement(const dbscan::Clustering& exact,
                                        const dbscan::Clustering& approx,
                                        std::span<const char> exact_core = {},
                                        std::span<const char> approx_core = {});

/// End-to-end harness: run exact sequential DBSCAN (kd-tree) and single-node
/// KNN-DBSCAN over `points` with the same (eps, minpts), and measure the
/// gap. This is what the knn test suite and bench_knn assert bounds on.
DisagreementReport knn_vs_exact(const PointSet& points,
                                const dbscan::DbscanParams& params,
                                const KnnGraphConfig& knn_config);

}  // namespace sdb::knn
