#include "knn/disagreement.hpp"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "core/dbscan_seq.hpp"
#include "core/quality.hpp"
#include "spatial/kd_tree.hpp"

namespace sdb::knn {

DisagreementReport measure_disagreement(const dbscan::Clustering& exact,
                                        const dbscan::Clustering& approx,
                                        std::span<const char> exact_core,
                                        std::span<const char> approx_core) {
  SDB_CHECK(exact.labels.size() == approx.labels.size(),
            "clustering size mismatch");
  const size_t n = exact.labels.size();
  DisagreementReport report;
  report.points = n;
  if (n == 0) return report;

  report.ari = dbscan::adjusted_rand_index(exact, approx);

  for (size_t i = 0; i < n; ++i) {
    const bool ne = exact.labels[i] == kNoise;
    const bool na = approx.labels[i] == kNoise;
    if (ne != na) ++report.noise_mismatches;
  }
  if (!exact_core.empty() && !approx_core.empty()) {
    SDB_CHECK(exact_core.size() == n && approx_core.size() == n,
              "core mask size mismatch");
    for (size_t i = 0; i < n; ++i) {
      if ((exact_core[i] != 0) != (approx_core[i] != 0)) {
        ++report.core_mismatches;
      }
    }
  }

  // Greedy best-overlap matching over the points clustered in BOTH: each
  // exact cluster (descending overlap mass, ties to smaller ids for
  // determinism) claims its best unclaimed approx cluster; everything
  // outside a matched (exact, approx) cell disagrees.
  std::map<std::pair<ClusterId, ClusterId>, u64> cell;
  u64 both = 0;
  for (size_t i = 0; i < n; ++i) {
    if (exact.labels[i] == kNoise || approx.labels[i] == kNoise) continue;
    ++both;
    ++cell[{exact.labels[i], approx.labels[i]}];
  }
  std::vector<std::pair<u64, std::pair<ClusterId, ClusterId>>> cells;
  cells.reserve(cell.size());
  for (const auto& [key, count] : cell) cells.emplace_back(count, key);
  std::sort(cells.begin(), cells.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });
  std::unordered_map<ClusterId, ClusterId> matched_exact;
  std::unordered_map<ClusterId, ClusterId> matched_approx;
  u64 agree = 0;
  for (const auto& [count, key] : cells) {
    const auto [le, la] = key;
    if (matched_exact.contains(le) || matched_approx.contains(la)) continue;
    matched_exact.emplace(le, la);
    matched_approx.emplace(la, le);
    agree += count;
  }
  report.label_disagreements = both - agree;
  return report;
}

DisagreementReport knn_vs_exact(const PointSet& points,
                                const dbscan::DbscanParams& params,
                                const KnnGraphConfig& knn_config) {
  // Exact reference: sequential DBSCAN over a kd-tree.
  KdTree tree(points);
  const dbscan::SeqResult exact =
      dbscan::dbscan_sequential(points, tree, params);
  std::vector<char> exact_core(points.size(), 0);
  for (const PointId p : exact.core_points) {
    exact_core[static_cast<size_t>(p)] = 1;
  }

  // KNN backend, single-node engine.
  const KnnGraph graph = build_knn_graph(points, knn_config);
  const KnnEpsGraph eps_graph = KnnEpsGraph::build(graph, params);
  const dbscan::Clustering approx = knn_dbscan(eps_graph);

  return measure_disagreement(exact.clustering, approx, exact_core,
                              eps_graph.core_mask());
}

}  // namespace sdb::knn
