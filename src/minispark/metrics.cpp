#include "minispark/metrics.hpp"

#include <algorithm>
#include <queue>

namespace sdb::minispark {

BalanceStats balance_stats(const JobMetrics& job) {
  BalanceStats stats;
  if (job.tasks.empty()) return stats;
  stats.min_task_s = job.tasks.front().sim_s;
  double total = 0.0;
  u64 local = 0;
  for (const TaskMetrics& t : job.tasks) {
    stats.min_task_s = std::min(stats.min_task_s, t.sim_s);
    stats.max_task_s = std::max(stats.max_task_s, t.sim_s);
    total += t.sim_s;
    local += t.locality_hit ? 1 : 0;
  }
  stats.mean_task_s = total / static_cast<double>(job.tasks.size());
  stats.locality_rate =
      static_cast<double>(local) / static_cast<double>(job.tasks.size());
  return stats;
}

std::vector<ScheduledTask> list_schedule(const std::vector<double>& durations,
                                         u32 cores) {
  SDB_CHECK(cores > 0, "need at least one core");
  // Min-heap of (free time, core id); core id breaks ties deterministically.
  using Slot = std::pair<double, u32>;
  std::priority_queue<Slot, std::vector<Slot>, std::greater<>> free_at;
  for (u32 c = 0; c < cores; ++c) free_at.emplace(0.0, c);
  std::vector<ScheduledTask> schedule;
  schedule.reserve(durations.size());
  for (u32 t = 0; t < durations.size(); ++t) {
    const auto [start, core] = free_at.top();
    free_at.pop();
    const double end = start + durations[t];
    free_at.emplace(end, core);
    schedule.push_back(ScheduledTask{t, core, start, end});
  }
  return schedule;
}

double list_schedule_makespan(const std::vector<double>& durations, u32 cores) {
  double makespan = 0.0;
  for (const ScheduledTask& t : list_schedule(durations, cores)) {
    makespan = std::max(makespan, t.end_s);
  }
  return makespan;
}

std::string render_gantt(const std::vector<ScheduledTask>& schedule,
                         u32 cores, int width) {
  SDB_CHECK(width > 8, "gantt width too small");
  double makespan = 0.0;
  for (const ScheduledTask& t : schedule) {
    makespan = std::max(makespan, t.end_s);
  }
  std::string out;
  if (makespan <= 0.0) return out;
  const double per_col = makespan / width;
  for (u32 c = 0; c < cores; ++c) {
    std::string row(static_cast<size_t>(width), '.');
    for (const ScheduledTask& t : schedule) {
      if (t.core != c) continue;
      auto col0 = static_cast<int>(t.start_s / per_col);
      auto col1 = static_cast<int>(t.end_s / per_col);
      col0 = std::min(col0, width - 1);
      col1 = std::min(std::max(col1, col0 + 1), width);
      const char glyph = static_cast<char>('0' + t.task % 10);
      for (int col = col0; col < col1; ++col) {
        row[static_cast<size_t>(col)] = glyph;
      }
    }
    char label[32];
    std::snprintf(label, sizeof(label), "core %3u |", c);
    out += label + row + "|\n";
  }
  return out;
}

}  // namespace sdb::minispark
