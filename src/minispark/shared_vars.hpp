// Spark's two shared-variable kinds, as used by the paper (Section IV.B):
//
//   * Broadcast<T> — read-only, shipped once per executor, not per task.
//     The paper broadcasts eps, minpts, the partition map, and — crucially —
//     the kd-tree over the whole dataset, which is what lets executors
//     compute globally-exact neighborhoods with no peer communication.
//   * Accumulator<T> — write-only from executors, merged associatively in
//     the driver. The paper uses one to bring every executor's partial
//     clusters back to the driver at the end of the foreach.
//
// In-process, values are shared by pointer (zero-copy); the *declared* byte
// size feeds the network cost model so the simulated clock prices the
// shipment the way a real cluster would.
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <set>

#include "fault/injection.hpp"
#include "util/common.hpp"
#include "util/counters.hpp"

namespace sdb::minispark {

template <typename T>
class Broadcast {
 public:
  Broadcast() = default;
  Broadcast(std::shared_ptr<const T> value, u64 bytes)
      : value_(std::move(value)), bytes_(bytes) {}

  [[nodiscard]] const T& value() const {
    SDB_CHECK(value_ != nullptr, "empty Broadcast dereferenced");
    return *value_;
  }
  [[nodiscard]] u64 bytes() const { return bytes_; }
  [[nodiscard]] bool valid() const { return value_ != nullptr; }

 private:
  std::shared_ptr<const T> value_;
  u64 bytes_ = 0;
};

/// Accumulator with a user merge operation. add() may be called from any
/// task thread; value() must only be read in the driver after the job
/// completes (Spark's contract — enforced here only by convention, verified
/// by the scheduler which snapshots after the barrier).
template <typename T>
class Accumulator {
 public:
  using Merge = std::function<void(T& into, T&& delta)>;

  Accumulator(T zero, Merge merge)
      : value_(std::move(zero)), merge_(std::move(merge)) {}

  /// Fold `delta` into the accumulator. `bytes` is the serialized size of
  /// the delta, charged to the calling task's network counter (accumulator
  /// updates ride the task-completion message in Spark).
  ///
  /// Fault site `spark.acc.lost`: the update message is dropped in flight —
  /// the delta is NOT applied and fault::InjectedFault propagates to the
  /// task runner, which treats the task attempt as failed and re-executes
  /// it (the update rides the task-completion message, so a lost update IS
  /// a failed task from the driver's point of view).
  void add(T delta, u64 bytes) {
    if (SDB_INJECT("spark.acc.lost")) {
      {
        const std::scoped_lock lock(mutex_);
        ++lost_updates_;
      }
      throw fault::InjectedFault("spark.acc.lost");
    }
    counters::net_bytes(bytes);
    const std::scoped_lock lock(mutex_);
    merge_(value_, std::move(delta));
    total_bytes_ += bytes;
    ++updates_;
  }

  /// Idempotent add: at most one update per `tag` is ever applied, no matter
  /// how many task attempts or speculative duplicates deliver it. Tag with
  /// the task/partition id to make re-execution and duplicate execution
  /// exact — Spark's own accumulator dedup for actions. A dropped duplicate
  /// still pays its network bytes (the message was shipped, then ignored).
  void add_once(u64 tag, T delta, u64 bytes) {
    if (SDB_INJECT("spark.acc.lost")) {
      {
        const std::scoped_lock lock(mutex_);
        ++lost_updates_;
      }
      throw fault::InjectedFault("spark.acc.lost");
    }
    counters::net_bytes(bytes);
    const std::scoped_lock lock(mutex_);
    if (!applied_tags_.insert(tag).second) {
      ++duplicates_ignored_;
      return;
    }
    merge_(value_, std::move(delta));
    total_bytes_ += bytes;
    ++updates_;
  }

  /// Scope the add_once dedup tags to one job. Entering a different scope
  /// clears the tags recorded under the previous one, so the tag set is
  /// bounded by a single job's partition count instead of growing across
  /// every job (resumed or otherwise) that reuses this accumulator.
  void begin_job(u64 job_fingerprint) {
    const std::scoped_lock lock(mutex_);
    if (job_scope_ != job_fingerprint) {
      applied_tags_.clear();
      job_scope_ = job_fingerprint;
    }
  }

  /// The job's result has been consumed by the driver: drop the dedup tags
  /// (late duplicate deliveries of a committed job are impossible — the
  /// barrier already passed).
  void commit_job() {
    const std::scoped_lock lock(mutex_);
    applied_tags_.clear();
  }

  /// Currently-live dedup tags (observability for the scoping contract).
  [[nodiscard]] size_t pending_tags() const {
    const std::scoped_lock lock(mutex_);
    return applied_tags_.size();
  }

  /// Driver-side read.
  [[nodiscard]] const T& value() const { return value_; }
  [[nodiscard]] T& mutable_value() { return value_; }
  [[nodiscard]] u64 total_bytes() const { return total_bytes_; }
  [[nodiscard]] u64 updates() const { return updates_; }
  /// Updates dropped by the `spark.acc.lost` fault site.
  [[nodiscard]] u64 lost_updates() const {
    const std::scoped_lock lock(mutex_);
    return lost_updates_;
  }
  /// Tagged updates ignored because their tag was already applied.
  [[nodiscard]] u64 duplicates_ignored() const {
    const std::scoped_lock lock(mutex_);
    return duplicates_ignored_;
  }

 private:
  T value_;
  Merge merge_;
  mutable std::mutex mutex_;
  std::set<u64> applied_tags_;
  u64 job_scope_ = 0;
  u64 total_bytes_ = 0;
  u64 updates_ = 0;
  u64 lost_updates_ = 0;
  u64 duplicates_ignored_ = 0;
};

/// Convenience numeric sum accumulator.
template <typename T>
std::shared_ptr<Accumulator<T>> make_sum_accumulator(T zero = T{}) {
  return std::make_shared<Accumulator<T>>(
      std::move(zero), [](T& into, T&& delta) { into += delta; });
}

}  // namespace sdb::minispark
