#include "minispark/job_checkpoint.hpp"

#include <cstdlib>
#include <cstring>
#include <filesystem>

#include "fault/injection.hpp"
#include "util/serialize.hpp"

namespace sdb::minispark {

namespace fs = std::filesystem;

namespace {

constexpr u64 kRecordMagic = 0x5344424a434b5054ull;  // "SDBJCKPT"

u64 fnv1a(const char* data, size_t size) {
  u64 h = 1469598103934665603ull;
  for (size_t i = 0; i < size; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 1099511628211ull;
  }
  return h;
}

/// Record layout: magic, fingerprint, partition, blob (length-prefixed),
/// FNV-1a trailer over everything before it.
std::vector<char> encode_record(u64 fingerprint, u32 partition,
                                const std::string& blob) {
  BinaryWriter w;
  w.write_u64(kRecordMagic);
  w.write_u64(fingerprint);
  w.write_u32(partition);
  w.write_string(blob);
  w.write_u64(fnv1a(w.buffer().data(), w.buffer().size()));
  return w.take();
}

/// Parse + verify one record file. Returns false on any inconsistency —
/// wrong magic, wrong fingerprint, truncation, checksum mismatch.
bool decode_record(const std::vector<char>& buf, u64 fingerprint,
                   u32* partition, std::string* blob) {
  // magic + fingerprint + partition + blob length + trailer
  const size_t min_size = 3 * sizeof(u64) + sizeof(u32) + sizeof(u64);
  if (buf.size() < min_size) return false;
  const size_t payload = buf.size() - sizeof(u64);
  u64 trailer = 0;
  std::memcpy(&trailer, buf.data() + payload, sizeof(u64));
  if (trailer != fnv1a(buf.data(), payload)) return false;
  BinaryReader r(buf.data(), payload);
  if (r.read_u64() != kRecordMagic) return false;
  if (r.read_u64() != fingerprint) return false;
  *partition = r.read_u32();
  const u64 len = r.read_u64();
  if (len != r.remaining()) return false;
  blob->assign(buf.data() + r.position(), len);
  return true;
}

}  // namespace

JobCheckpoint::JobCheckpoint(std::string dir, u64 fingerprint, bool resume)
    : dir_(std::move(dir)), fingerprint_(fingerprint) {
  SDB_CHECK(!dir_.empty(), "JobCheckpoint needs a directory");
  fs::create_directories(dir_);
  recover(resume);
}

std::string JobCheckpoint::record_path(u32 partition) const {
  return (fs::path(dir_) / ("part_" + std::to_string(partition) + ".ckpt"))
      .string();
}

void JobCheckpoint::recover(bool resume) {
  std::vector<fs::path> doomed;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    const std::string name = entry.path().filename().string();
    if (name.ends_with(".tmp")) {
      doomed.push_back(entry.path());  // crashed mid-stage; never committed
      continue;
    }
    if (name.rfind("part_", 0) != 0 || !name.ends_with(".ckpt")) continue;
    if (!resume) {
      doomed.push_back(entry.path());
      continue;
    }
    const std::vector<char> buf = read_file(entry.path().string());
    u32 partition = 0;
    std::string blob;
    if (decode_record(buf, fingerprint_, &partition, &blob)) {
      blobs_.emplace(partition, std::move(blob));
      ++recovered_;
    } else {
      // Torn record or another job's leftovers: worthless either way.
      doomed.push_back(entry.path());
      ++discarded_;
    }
  }
  for (const fs::path& p : doomed) fs::remove(p);
}

bool JobCheckpoint::has(u32 partition) const {
  const std::scoped_lock lock(mu_);
  return blobs_.contains(partition);
}

std::vector<u32> JobCheckpoint::completed() const {
  const std::scoped_lock lock(mu_);
  std::vector<u32> out;
  out.reserve(blobs_.size());
  for (const auto& [p, blob] : blobs_) out.push_back(p);
  return out;
}

std::string JobCheckpoint::load(u32 partition) const {
  const std::scoped_lock lock(mu_);
  const auto it = blobs_.find(partition);
  SDB_CHECK(it != blobs_.end(),
            "no checkpoint record for partition " + std::to_string(partition));
  return it->second;
}

void JobCheckpoint::save(u32 partition, const std::string& blob) {
  const std::scoped_lock lock(mu_);
  const std::vector<char> record = encode_record(fingerprint_, partition, blob);
  const std::string final_path = record_path(partition);
  const std::string tmp = final_path + ".tmp";
  if (SDB_INJECT("ckpt.crash.mid_write")) {
    // Crash at byte k of the record: the torn prefix reaches disk, the
    // process dies, recovery discards the tmp file.
    const std::vector<char> torn(record.begin(),
                                 record.begin() + record.size() / 2);
    write_file(tmp, torn);
    fault::trigger_crash("ckpt.crash.mid_write");
  }
  write_file(tmp, record);
  // Fully staged but not yet visible: dying here loses only this record.
  SDB_CRASH_POINT("ckpt.crash.before_rename");
  fs::rename(tmp, final_path);
  // Committed: dying here must preserve the record for recovery.
  SDB_CRASH_POINT("ckpt.crash.after_rename");
  blobs_.insert_or_assign(partition, blob);
  ++saves_;
}

void JobCheckpoint::commit() {
  const std::scoped_lock lock(mu_);
  for (const auto& [p, blob] : blobs_) {
    fs::remove(record_path(p));
  }
  blobs_.clear();
}

}  // namespace sdb::minispark
