// Job/task metrics and the simulated-cluster scheduling arithmetic.
#pragma once

#include <string>
#include <vector>

#include "util/common.hpp"
#include "util/counters.hpp"

namespace sdb::minispark {

struct TaskMetrics {
  u32 partition = 0;
  u32 attempts = 1;        ///< 1 = succeeded first try
  bool straggled = false;
  bool locality_hit = false;
  double wall_s = 0.0;     ///< real host time spent computing the task
  double sim_s = 0.0;      ///< simulated task duration (launch + work)
  WorkCounters counters;
};

struct JobMetrics {
  u64 job_id = 0;
  std::string name;
  u32 num_tasks = 0;
  u32 num_stages = 1;      ///< narrow-only lineage -> always 1 here
  u32 lineage_depth = 0;
  u32 failures_injected = 0;
  u32 timeouts = 0;          ///< task attempts declared dead by the timeout
  u32 duplicated_tasks = 0;  ///< speculative duplicate executions injected

  double wall_s = 0.0;

  /// Simulated time the executor phase occupies: tasks list-scheduled onto
  /// the configured core count (the "time spent in executors" series of the
  /// paper's Figure 6 / left column of Figure 8).
  double sim_executor_makespan_s = 0.0;
  /// Sum of all task durations (the serial executor work).
  double sim_executor_total_s = 0.0;
  /// Simulated driver-side time for this job: job setup, broadcast
  /// shipment, result/accumulator collection.
  double sim_driver_s = 0.0;

  u64 broadcast_bytes = 0;
  u64 result_bytes = 0;

  std::vector<TaskMetrics> tasks;

  [[nodiscard]] double sim_total_s() const {
    return sim_executor_makespan_s + sim_driver_s;
  }
};

/// Greedy FIFO list scheduling: assign each task, in order, to the earliest-
/// available core; returns the makespan. This is how the simulated cluster
/// turns per-task durations into a parallel phase duration.
double list_schedule_makespan(const std::vector<double>& durations, u32 cores);

/// Workload-balance summary of a job — the measurement behind the paper's
/// closing concern that index-block partitioning "might cause workload to
/// be unbalanced".
struct BalanceStats {
  double min_task_s = 0.0;
  double max_task_s = 0.0;
  double mean_task_s = 0.0;
  /// Fraction of tasks whose input block had a co-located replica.
  double locality_rate = 1.0;

  /// max/mean task duration; 1.0 = perfectly balanced. This is the factor
  /// by which the executor-phase makespan exceeds the ideal at high core
  /// counts.
  [[nodiscard]] double imbalance() const {
    return mean_task_s > 0.0 ? max_task_s / mean_task_s : 1.0;
  }
};

BalanceStats balance_stats(const JobMetrics& job);

/// One task placement produced by the list scheduler.
struct ScheduledTask {
  u32 task = 0;   ///< index into the duration list (== partition id)
  u32 core = 0;   ///< simulated core it ran on
  double start_s = 0.0;
  double end_s = 0.0;
};

/// The full schedule behind list_schedule_makespan: tasks in submission
/// order, each on the earliest-free core. makespan == max end_s.
std::vector<ScheduledTask> list_schedule(const std::vector<double>& durations,
                                         u32 cores);

/// ASCII Gantt chart of a schedule: one row per core, time left->right,
/// each task drawn as its index (mod 10). `width` = chart columns.
std::string render_gantt(const std::vector<ScheduledTask>& schedule,
                         u32 cores, int width = 72);

}  // namespace sdb::minispark
