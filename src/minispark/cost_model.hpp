// Cost model: converts measured WorkCounters into simulated seconds.
//
// The paper's evaluation ran on up to 512 Cray XC30 cores; this repo runs on
// whatever host it is built on, so scaling results are produced on a
// *simulated cluster clock*. Execution is always real (every task computes
// its exact result); only the *time* attributed to a task is synthesized:
//
//     sim_seconds(task) = task_launch_overhead
//                       + sum_i counter_i * ns_per_op_i
//                       + bytes moved / bandwidth
//
// The per-op constants below were calibrated once against wall-clock
// microbenchmarks of the respective hot loops on a 2.4 GHz x86 core (the
// paper's Ivy Bridge clock) and are deliberately kept fixed so results are
// machine-independent. calibrate() can re-derive them on the current host.
#pragma once

#include "util/common.hpp"
#include "util/counters.hpp"

namespace sdb::minispark {

struct CostModel {
  // --- compute (nanoseconds per counted unit operation) ---
  double ns_distance_eval = 14.0;   ///< one 10-d squared distance
  double ns_tree_node = 9.0;        ///< kd-tree node visit (box test)
  double ns_hash_op = 22.0;         ///< Hashtable put/containsKey (paper IIIB)
  double ns_queue_op = 7.0;         ///< LinkedList add/remove (paper IIIB)
  double ns_point_processed = 30.0; ///< per-point bookkeeping in the scan
  double ns_seed_op = 12.0;         ///< SEED placement step (Algorithm 3)
  double ns_merge_op = 18.0;        ///< driver merge step (Algorithm 4)
  double ns_codec_byte = 1.0;       ///< (de)serialization CPU per byte

  // --- storage / network ---
  double disk_read_bps = 400e6;     ///< local disk / DFS read bandwidth
  double disk_write_bps = 250e6;    ///< local disk / DFS write bandwidth
  double net_bps = 1.0e9;           ///< executor<->driver bandwidth (bytes/s)
  double net_latency_s = 0.5e-3;    ///< per-message latency

  // --- framework overheads ---
  double task_launch_s = 5e-3;      ///< Spark task dispatch cost (~5 ms)
  double job_setup_s = 80e-3;       ///< per-job driver scheduling cost

  /// Simulated compute seconds for a set of counted operations (bytes are
  /// charged at disk bandwidth; they come from DFS/spill IO).
  [[nodiscard]] double compute_seconds(const WorkCounters& c) const {
    const double ns = static_cast<double>(c.distance_evals) * ns_distance_eval +
                      static_cast<double>(c.tree_nodes) * ns_tree_node +
                      static_cast<double>(c.hash_ops) * ns_hash_op +
                      static_cast<double>(c.queue_ops) * ns_queue_op +
                      static_cast<double>(c.points_processed) * ns_point_processed +
                      static_cast<double>(c.seed_ops) * ns_seed_op +
                      static_cast<double>(c.merge_ops) * ns_merge_op +
                      static_cast<double>(c.codec_bytes) * ns_codec_byte;
    return ns * 1e-9 + static_cast<double>(c.bytes_read) / disk_read_bps +
           static_cast<double>(c.bytes_written) / disk_write_bps +
           static_cast<double>(c.net_bytes) / net_bps +
           (c.net_bytes > 0 ? net_latency_s : 0.0);
  }

  /// Seconds to broadcast `bytes` to `executors` executors. Spark uses a
  /// torrent-style broadcast whose cost grows logarithmically with the
  /// executor count rather than linearly.
  [[nodiscard]] double broadcast_seconds(u64 bytes, u32 executors) const {
    if (executors == 0) return 0.0;
    double log2e = 1.0;
    for (u32 e = executors; e > 1; e >>= 1) log2e += 1.0;
    return net_latency_s * log2e +
           static_cast<double>(bytes) / net_bps * log2e * 0.25 +
           static_cast<double>(bytes) / net_bps;
  }

  /// Seconds for one executor->driver transfer of `bytes` (accumulator
  /// results, collected partitions).
  [[nodiscard]] double transfer_seconds(u64 bytes) const {
    return net_latency_s + static_cast<double>(bytes) / net_bps;
  }
};

/// Straggler model (the paper's t_straggling term): each task independently
/// straggles with probability `fraction`, multiplying its duration by a
/// factor drawn uniformly from [1, 1 + max_extra].
struct StragglerModel {
  double fraction = 0.05;
  double max_extra = 0.5;
};

}  // namespace sdb::minispark
