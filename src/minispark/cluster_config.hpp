// Simulated cluster topology + execution knobs for a SparkContext.
#pragma once

#include <string>

#include "minispark/cost_model.hpp"
#include "util/common.hpp"

namespace sdb::minispark {

struct ClusterConfig {
  /// Number of executor processes in the simulated cluster.
  u32 executors = 4;
  /// Simulated cores per executor (total cores = executors * cores).
  u32 cores_per_executor = 1;
  /// Real worker threads used to run tasks on the host (independent of the
  /// simulated core count; correctness never depends on it).
  u32 host_threads = 1;
  /// Default partition count for parallelize() when unspecified (Spark's
  /// defaultParallelism). 0 = total simulated cores.
  u32 default_parallelism = 0;

  CostModel cost;
  StragglerModel straggler;

  /// Fraction of task *attempts* that are injected to fail (fault-tolerance
  /// exercises). Failed tasks are recomputed from lineage up to
  /// `max_task_attempts` times. The FaultPlan sites `spark.task.fail`,
  /// `spark.task.hang`, `spark.acc.lost` and `spark.task.duplicate`
  /// (fault/fault_plan.hpp) feed the same retry loop.
  double fault_injection_rate = 0.0;
  u32 max_task_attempts = 4;

  /// Simulated duration of a task stalled by the `spark.task.hang` site.
  double task_hang_s = 30.0;
  /// Per-task timeout on the simulated clock: a hung task whose stall
  /// reaches the timeout is declared dead by the driver and re-executed
  /// (speculative-execution semantics). 0 = no timeout — a hang just makes
  /// the task slow (a straggler).
  double task_timeout_s = 10.0;

  /// Seed for straggler sampling and fault injection.
  u64 seed = 42;

  /// Application name, used in logs/metrics.
  std::string app_name = "sparkdbscan";

  [[nodiscard]] u32 total_cores() const {
    return executors * cores_per_executor;
  }
};

}  // namespace sdb::minispark
