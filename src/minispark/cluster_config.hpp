// Simulated cluster topology + execution knobs for a SparkContext.
#pragma once

#include <string>

#include "minispark/cost_model.hpp"
#include "util/common.hpp"

namespace sdb::minispark {

struct ClusterConfig {
  /// Number of executor processes in the simulated cluster.
  u32 executors = 4;
  /// Simulated cores per executor (total cores = executors * cores).
  u32 cores_per_executor = 1;
  /// Real worker threads used to run tasks on the host (independent of the
  /// simulated core count; correctness never depends on it).
  u32 host_threads = 1;
  /// Default partition count for parallelize() when unspecified (Spark's
  /// defaultParallelism). 0 = total simulated cores.
  u32 default_parallelism = 0;

  CostModel cost;
  StragglerModel straggler;

  /// Fraction of task *attempts* that are injected to fail (fault-tolerance
  /// exercises). Failed tasks are recomputed from lineage up to
  /// `max_task_attempts` times.
  double fault_injection_rate = 0.0;
  u32 max_task_attempts = 4;

  /// Seed for straggler sampling and fault injection.
  u64 seed = 42;

  /// Application name, used in logs/metrics.
  std::string app_name = "sparkdbscan";

  [[nodiscard]] u32 total_cores() const {
    return executors * cores_per_executor;
  }
};

}  // namespace sdb::minispark
