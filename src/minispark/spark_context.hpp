// SparkContext — the driver.
//
// Mirrors the Spark surface the paper's algorithm uses:
//   * sources: parallelize(), text_file(), generate();
//   * shared variables: broadcast(), accumulator();
//   * actions: collect(), count(), foreach_partition() — each action runs
//     one job: partitions become tasks, tasks run on a host thread pool,
//     failed tasks (fault injection) are recomputed from lineage, and the
//     completed job's simulated executor/driver times are recorded in
//     JobMetrics.
//
// Two clocks:
//   * wall clock — real host time (meaningful only for host-level benches);
//   * simulated cluster clock — per-task work counters priced by the
//     CostModel, list-scheduled onto config.total_cores(), plus straggler
//     and network terms. All paper figures are reproduced on this clock.
#pragma once

#include <memory>
#include <mutex>
#include <vector>

#include "dfs/mini_dfs.hpp"
#include "fault/injection.hpp"
#include "minispark/cluster_config.hpp"
#include "minispark/metrics.hpp"
#include "minispark/rdd.hpp"
#include "minispark/shared_vars.hpp"
#include "minispark/text_file_rdd.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_pool.hpp"

namespace sdb::minispark {

class SparkContext {
 public:
  explicit SparkContext(ClusterConfig cfg)
      : cfg_(std::move(cfg)), pool_(std::max<u32>(1, cfg_.host_threads)) {
    SDB_CHECK(cfg_.executors > 0, "need at least one executor");
  }

  [[nodiscard]] const ClusterConfig& config() const { return cfg_; }

  /// Default partition count for parallelize().
  [[nodiscard]] u32 default_parallelism() const {
    return cfg_.default_parallelism > 0 ? cfg_.default_parallelism
                                        : cfg_.total_cores();
  }

  // --- sources ---

  template <typename T>
  std::shared_ptr<Rdd<T>> parallelize(std::vector<T> data, u32 partitions = 0) {
    if (partitions == 0) partitions = default_parallelism();
    return std::make_shared<ParallelizeRdd<T>>(std::move(data), partitions);
  }

  std::shared_ptr<Rdd<std::string>> text_file(const dfs::MiniDfs& dfs,
                                              const std::string& path) {
    return std::make_shared<TextFileRdd>(dfs, path);
  }

  template <typename T>
  std::shared_ptr<Rdd<T>> generate(std::function<std::vector<T>(u32)> fn,
                                   u32 partitions, std::string name = "generator") {
    return std::make_shared<GeneratorRdd<T>>(std::move(fn), partitions,
                                             std::move(name));
  }

  // --- shared variables ---

  /// Register a broadcast variable. `bytes` is the serialized size used by
  /// the network model; it is charged to the next job's driver time (the
  /// shipment happens when the first job needs the value).
  template <typename T>
  Broadcast<T> broadcast(T value, u64 bytes) {
    pending_broadcast_bytes_ += bytes;
    return Broadcast<T>(std::make_shared<const T>(std::move(value)), bytes);
  }

  template <typename T>
  std::shared_ptr<Accumulator<T>> accumulator(T zero,
                                              typename Accumulator<T>::Merge merge) {
    return std::make_shared<Accumulator<T>>(std::move(zero), std::move(merge));
  }

  // --- actions ---

  /// Run `fn(partition_index, partition_data)` once per partition and gather
  /// the returned values in partition order. The generic job runner
  /// underlying every action. `result_bytes_per_task` prices each task's
  /// result shipment to the driver.
  template <typename T, typename F>
  auto run_job(const Rdd<T>& rdd, F fn, std::string name,
               u64 result_bytes_per_task = 0) {
    using R = std::invoke_result_t<F, u32, std::vector<T>&&>;
    const u32 num_tasks = rdd.num_partitions();

    JobMetrics job;
    job.job_id = jobs_.size();
    job.name = std::move(name);
    job.num_tasks = num_tasks;
    job.lineage_depth = rdd.lineage_depth();
    job.broadcast_bytes = pending_broadcast_bytes_;
    job.tasks.resize(num_tasks);

    Stopwatch job_wall;
    std::vector<R> results(num_tasks);
    std::vector<std::future<void>> futures;
    futures.reserve(num_tasks);
    std::mutex metrics_mutex;

    for (u32 p = 0; p < num_tasks; ++p) {
      futures.push_back(pool_.submit([&, p] {
        TaskMetrics tm;
        tm.partition = p;
        Stopwatch wall;
        double stall_sim_s = 0.0;  // hang stalls + timeout waits
        for (u32 attempt = 1;; ++attempt) {
          tm.attempts = attempt;
          const bool can_retry = attempt < cfg_.max_task_attempts;
          if (can_retry && (inject_fault(job.job_id, p, attempt) ||
                            SDB_INJECT("spark.task.fail"))) {
            // Simulated task loss: lineage makes recomputation trivially
            // correct, so "recovery" is literally running compute again.
            const std::scoped_lock lock(metrics_mutex);
            ++job.failures_injected;
            continue;
          }
          if (SDB_INJECT("spark.task.hang")) {
            // The task stalls on the simulated clock. With a timeout
            // configured, the driver declares the attempt dead once the
            // stall reaches it and re-executes from lineage; otherwise the
            // task is merely a straggler.
            if (can_retry && cfg_.task_timeout_s > 0.0 &&
                cfg_.task_hang_s >= cfg_.task_timeout_s) {
              stall_sim_s += cfg_.task_timeout_s;  // time burned waiting
              const std::scoped_lock lock(metrics_mutex);
              ++job.timeouts;
              continue;
            }
            stall_sim_s += cfg_.task_hang_s;
          }
          WorkCounters wc;
          bool attempt_ok = true;
          try {
            ScopedCounters scope(&wc);
            std::vector<T> data = rdd.materialize(p);
            results[p] = fn(p, std::move(data));
            if (SDB_INJECT("spark.task.duplicate")) {
              // Speculative duplicate: the whole task runs a second time
              // (both copies' work is physical). Exactness relies on
              // deterministic lineage plus idempotent accumulator merge
              // (Accumulator::add_once) — verified by the chaos suite.
              std::vector<T> dup = rdd.materialize(p);
              results[p] = fn(p, std::move(dup));
              const std::scoped_lock lock(metrics_mutex);
              ++job.duplicated_tasks;
            }
          } catch (const fault::InjectedFault&) {
            // An in-task fault (e.g. a lost accumulator update) fails the
            // attempt; the driver re-executes from lineage. Exhausted
            // attempts propagate — faults beyond the retry budget are real.
            attempt_ok = false;
            if (!can_retry) throw;
            const std::scoped_lock lock(metrics_mutex);
            ++job.failures_injected;
          }
          if (!attempt_ok) continue;
          tm.counters = wc;
          break;
        }
        tm.wall_s = wall.seconds();
        double sim = cfg_.cost.task_launch_s * tm.attempts +
                     cfg_.cost.compute_seconds(tm.counters) +
                     cfg_.cost.transfer_seconds(result_bytes_per_task);
        const double factor = straggle_factor(job.job_id, p);
        tm.straggled = factor > 1.0 || stall_sim_s > 0.0;
        sim = sim * factor + stall_sim_s;
        tm.sim_s = sim;
        tm.locality_hit = locality_hit(rdd, p);
        {
          const std::scoped_lock lock(metrics_mutex);
          job.tasks[p] = tm;
          job.result_bytes += result_bytes_per_task;
        }
      }));
    }
    for (auto& f : futures) f.get();  // rethrows task exceptions

    job.wall_s = job_wall.seconds();
    std::vector<double> durations;
    durations.reserve(num_tasks);
    for (const auto& tm : job.tasks) {
      durations.push_back(tm.sim_s);
      job.sim_executor_total_s += tm.sim_s;
    }
    job.sim_executor_makespan_s =
        list_schedule_makespan(durations, cfg_.total_cores());
    job.sim_driver_s =
        cfg_.cost.job_setup_s +
        cfg_.cost.broadcast_seconds(pending_broadcast_bytes_, cfg_.executors) +
        cfg_.cost.transfer_seconds(job.result_bytes);
    pending_broadcast_bytes_ = 0;

    SDB_LOG_DEBUG("minispark",
                  "job %llu '%s': %u tasks, sim exec %.3fs, sim driver %.3fs",
                  static_cast<unsigned long long>(job.job_id), job.name.c_str(),
                  num_tasks, job.sim_executor_makespan_s, job.sim_driver_s);
    jobs_.push_back(std::move(job));
    return results;
  }

  /// Materialize the whole RDD in the driver, in partition order.
  template <typename T>
  std::vector<T> collect(const Rdd<T>& rdd, u64 bytes_per_element = sizeof(T)) {
    auto parts = run_job(
        rdd, [](u32, std::vector<T>&& data) { return std::move(data); },
        "collect(" + rdd.name() + ")");
    std::vector<T> out;
    u64 bytes = 0;
    for (auto& part : parts) {
      bytes += part.size() * bytes_per_element;
      out.insert(out.end(), std::make_move_iterator(part.begin()),
                 std::make_move_iterator(part.end()));
    }
    if (!jobs_.empty()) jobs_.back().result_bytes += bytes;
    return out;
  }

  /// Count elements across all partitions.
  template <typename T>
  u64 count(const Rdd<T>& rdd) {
    auto sizes = run_job(
        rdd, [](u32, std::vector<T>&& data) { return data.size(); },
        "count(" + rdd.name() + ")", sizeof(u64));
    u64 total = 0;
    for (const auto s : sizes) total += s;
    return total;
  }

  /// Fold all elements with an associative, commutative operation (Spark's
  /// reduce). Aborts on an empty RDD, like Spark.
  template <typename T, typename Op>
  T reduce(const Rdd<T>& rdd, Op op) {
    auto partials = run_job(
        rdd,
        [op](u32, std::vector<T>&& data) {
          std::optional<T> acc;
          for (auto& x : data) {
            if (!acc) acc = std::move(x);
            else acc = op(std::move(*acc), std::move(x));
          }
          return acc;
        },
        "reduce(" + rdd.name() + ")", sizeof(T));
    std::optional<T> total;
    for (auto& part : partials) {
      if (!part) continue;
      if (!total) total = std::move(part);
      else total = op(std::move(*total), std::move(*part));
    }
    SDB_CHECK(total.has_value(), "reduce() on an empty RDD");
    return std::move(*total);
  }

  /// First `n` elements in partition order (Spark's take; here a single job
  /// rather than Spark's incremental partition scan).
  template <typename T>
  std::vector<T> take(const Rdd<T>& rdd, size_t n) {
    std::vector<T> out;
    auto parts = run_job(
        rdd, [](u32, std::vector<T>&& data) { return std::move(data); },
        "take(" + rdd.name() + ")");
    for (auto& part : parts) {
      for (auto& x : part) {
        if (out.size() == n) return out;
        out.push_back(std::move(x));
      }
    }
    return out;
  }

  /// Run a side-effecting function once per partition (the paper's foreach;
  /// results flow back through accumulators, not return values).
  template <typename T, typename F>
  void foreach_partition(const Rdd<T>& rdd, F fn,
                         std::string name = "foreachPartition") {
    run_job(
        rdd,
        [fn = std::move(fn)](u32 p, std::vector<T>&& data) {
          fn(p, std::move(data));
          return 0;
        },
        std::move(name));
  }

  // --- metrics ---

  [[nodiscard]] const std::vector<JobMetrics>& jobs() const { return jobs_; }
  [[nodiscard]] const JobMetrics& last_job() const {
    SDB_CHECK(!jobs_.empty(), "no job has run");
    return jobs_.back();
  }

  /// Cumulative simulated executor time (makespans) across all jobs.
  [[nodiscard]] double sim_executor_seconds() const {
    double s = 0.0;
    for (const auto& j : jobs_) s += j.sim_executor_makespan_s;
    return s;
  }

  /// Cumulative simulated driver time across all jobs.
  [[nodiscard]] double sim_driver_seconds() const {
    double s = 0.0;
    for (const auto& j : jobs_) s += j.sim_driver_s;
    return s;
  }

 private:
  [[nodiscard]] bool inject_fault(u64 job, u32 task, u32 attempt) const {
    if (cfg_.fault_injection_rate <= 0.0) return false;
    Rng rng(derive_seed(cfg_.seed, "fault") ^
            (job * 1000003ull + task * 7919ull + attempt));
    return rng.chance(cfg_.fault_injection_rate);
  }

  [[nodiscard]] double straggle_factor(u64 job, u32 task) const {
    if (cfg_.straggler.fraction <= 0.0) return 1.0;
    Rng rng(derive_seed(cfg_.seed, "straggler") ^
            (job * 1000003ull + task * 7919ull));
    if (!rng.chance(cfg_.straggler.fraction)) return 1.0;
    return 1.0 + rng.uniform(0.0, cfg_.straggler.max_extra);
  }

  /// Executor for task p is p % executors; a locality hit means the block's
  /// replica set contains the datanode co-located with that executor.
  [[nodiscard]] bool locality_hit(const RddBase& rdd, u32 p) const {
    const auto locations = rdd.preferred_locations(p);
    if (locations.empty()) return true;  // no preference -> trivially local
    const u32 executor_node = p % cfg_.executors;
    for (const u32 loc : locations) {
      if (loc == executor_node) return true;
    }
    return false;
  }

  ClusterConfig cfg_;
  ThreadPool pool_;
  std::vector<JobMetrics> jobs_;
  u64 pending_broadcast_bytes_ = 0;
};

}  // namespace sdb::minispark
