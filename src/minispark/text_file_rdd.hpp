// textFile source RDD: one partition per MiniDfs block, TextInputFormat
// record splitting, HDFS-style preferred locations from block replicas.
#pragma once

#include <string>

#include "dfs/mini_dfs.hpp"
#include "minispark/rdd.hpp"

namespace sdb::minispark {

class TextFileRdd final : public Rdd<std::string> {
 public:
  /// The RDD keeps a reference to `dfs`; the caller must keep it alive for
  /// the lifetime of all jobs over this RDD.
  TextFileRdd(const dfs::MiniDfs& dfs, std::string path)
      : Rdd<std::string>("textFile(" + path + ")",
                         std::max<size_t>(1, dfs.stat(path).blocks.size()),
                         {}),
        dfs_(dfs),
        path_(std::move(path)) {}

  [[nodiscard]] std::vector<std::string> compute(u32 p) const override {
    std::vector<std::string> lines;
    if (p >= dfs_.stat(path_).blocks.size()) return lines;  // empty file edge
    const std::string split = dfs_.read_text_split(path_, p);
    size_t pos = 0;
    while (pos < split.size()) {
      size_t eol = split.find('\n', pos);
      if (eol == std::string::npos) eol = split.size();
      lines.emplace_back(split, pos, eol - pos);
      pos = eol + 1;
    }
    return lines;
  }

  [[nodiscard]] std::vector<u32> preferred_locations(u32 partition) const override {
    const auto& blocks = dfs_.stat(path_).blocks;
    if (partition >= blocks.size()) return {};
    return blocks[partition].replicas;
  }

 private:
  const dfs::MiniDfs& dfs_;
  std::string path_;
};

}  // namespace sdb::minispark
