// JobCheckpoint — crash-consistent persistence of a job's accepted
// per-partition results.
//
// The paper's driver is a single point of failure: every partial cluster
// flows through one accumulator and one merge pass, so a driver death at
// 90% of a run used to lose everything. A JobCheckpoint makes the accepted
// partial-result set durable as it accumulates: each partition's serialized
// blob is written to its own checksummed record file with an atomic
// tmp-write + rename, keyed by a deterministic job fingerprint (dataset
// hash, eps, minpts, partitioner, seed, ... — see core/job_identity.hpp).
// On restart, the driver opens the same directory, recovers every record
// whose fingerprint and checksum verify, schedules only the missing
// partitions, and resumes the merge — `merge_partial_clusters`' uid-
// canonical ordering guarantees the resumed result is byte-identical to an
// uninterrupted run.
//
// Crash consistency: a record is either fully committed (renamed into
// place, checksum valid) or invisible. Records torn by a crash — at the
// `ckpt.crash.mid_write`, `ckpt.crash.before_rename` or
// `ckpt.crash.after_rename` points — are discarded at recovery, never
// half-read. Records written under a different fingerprint (the directory
// was reused for another job) are discarded and deleted.
//
// The store is content-agnostic: blobs are opaque byte strings, so the same
// class checkpoints Spark accumulator payloads and MapReduce map outputs.
#pragma once

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "util/common.hpp"

namespace sdb::minispark {

class JobCheckpoint {
 public:
  /// Open (creating if absent) the checkpoint directory for the job
  /// identified by `fingerprint`, recovering every committed record that
  /// carries the same fingerprint. `resume == false` wipes any prior state
  /// instead of recovering it (a fresh run that only wants durability).
  JobCheckpoint(std::string dir, u64 fingerprint, bool resume = true);

  /// Partition already has a committed record (recovered or saved).
  [[nodiscard]] bool has(u32 partition) const;

  /// Sorted partitions with committed records.
  [[nodiscard]] std::vector<u32> completed() const;

  /// The committed blob for `partition`. Aborts if absent.
  [[nodiscard]] std::string load(u32 partition) const;

  /// Durably commit `blob` as partition `partition`'s result. Atomic:
  /// either the whole record publishes or recovery sees nothing.
  /// Idempotent — re-saving a partition overwrites (task re-execution and
  /// speculative duplicates write identical bytes from deterministic
  /// lineage). Thread-safe.
  void save(u32 partition, const std::string& blob);

  /// The job finished and its result was consumed: delete every record.
  /// A fresh run of the same job starts from zero rather than trivially
  /// "resuming" a completed one.
  void commit();

  [[nodiscard]] u64 fingerprint() const { return fingerprint_; }
  [[nodiscard]] const std::string& dir() const { return dir_; }

  // --- observability ---
  /// Records recovered intact at open.
  [[nodiscard]] u64 recovered() const { return recovered_; }
  /// Record files discarded at open (torn, checksum mismatch, or a
  /// different job's fingerprint).
  [[nodiscard]] u64 discarded() const { return discarded_; }
  /// Records committed by save() in this process.
  [[nodiscard]] u64 saves() const { return saves_; }

 private:
  [[nodiscard]] std::string record_path(u32 partition) const;
  void recover(bool resume);

  std::string dir_;
  u64 fingerprint_;
  mutable std::mutex mu_;
  std::map<u32, std::string> blobs_;  ///< committed records, by partition
  u64 recovered_ = 0;
  u64 discarded_ = 0;
  u64 saves_ = 0;
};

}  // namespace sdb::minispark
