// Typed, lazy, lineage-tracked RDDs.
//
// A faithful (narrow-dependency) subset of Spark's RDD model:
//   * an Rdd<T> is an immutable description of a partitioned dataset;
//   * compute(p) deterministically materializes partition p — this purity is
//     what makes lineage-based fault recovery sound (a lost/failed task is
//     simply recomputed);
//   * transformations (map/filter/map_partitions) build child RDDs lazily;
//   * cache() memoizes materialized partitions, Spark's in-memory RDD reuse;
//   * every RDD records its parents, so the scheduler can report lineage
//     depth and recovery can walk the chain.
//
// Wide (shuffle) dependencies are intentionally absent: the whole point of
// the paper's algorithm is that DBSCAN-with-SEEDs needs none. The MapReduce
// substrate (src/mapreduce) is where shuffles live, as the paper's baseline.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <type_traits>
#include <vector>

#include "util/common.hpp"

namespace sdb::minispark {

/// Untyped RDD facts: identity, arity, lineage.
class RddBase {
 public:
  RddBase(std::string name, u32 num_partitions,
          std::vector<std::shared_ptr<const RddBase>> parents)
      : id_(next_id_.fetch_add(1, std::memory_order_relaxed)),
        name_(std::move(name)),
        num_partitions_(num_partitions),
        parents_(std::move(parents)) {}
  virtual ~RddBase() = default;

  [[nodiscard]] u64 id() const { return id_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] u32 num_partitions() const { return num_partitions_; }
  [[nodiscard]] const std::vector<std::shared_ptr<const RddBase>>& parents()
      const {
    return parents_;
  }

  /// Longest parent chain above this RDD (0 for a source).
  [[nodiscard]] u32 lineage_depth() const {
    u32 depth = 0;
    for (const auto& p : parents_) depth = std::max(depth, p->lineage_depth() + 1);
    return depth;
  }

  /// Preferred simulated datanode ids for a partition (HDFS locality hint);
  /// empty = no preference. Only source RDDs typically have one.
  [[nodiscard]] virtual std::vector<u32> preferred_locations(u32 partition) const {
    if (!parents_.empty()) return parents_.front()->preferred_locations(partition);
    (void)partition;
    return {};
  }

 private:
  static inline std::atomic<u64> next_id_{0};
  u64 id_;
  std::string name_;
  u32 num_partitions_;
  std::vector<std::shared_ptr<const RddBase>> parents_;
};

template <typename T>
class Rdd : public RddBase,
            public std::enable_shared_from_this<Rdd<T>> {
 public:
  using element_type = T;

  using RddBase::RddBase;

  /// Deterministically compute partition `p` from scratch (pure).
  [[nodiscard]] virtual std::vector<T> compute(u32 p) const = 0;

  /// Materialize partition `p`, consulting the cache when enabled.
  [[nodiscard]] std::vector<T> materialize(u32 p) const {
    if (!cached_.load(std::memory_order_acquire)) return compute(p);
    {
      const std::scoped_lock lock(cache_mutex_);
      if (p < cache_.size() && cache_[p].has_value()) return *cache_[p];
    }
    std::vector<T> data = compute(p);
    {
      const std::scoped_lock lock(cache_mutex_);
      if (cache_.size() < num_partitions()) cache_.resize(num_partitions());
      cache_[p] = data;
    }
    return data;
  }

  /// Enable in-memory caching of materialized partitions (Spark's cache()).
  std::shared_ptr<Rdd<T>> cache() {
    cached_.store(true, std::memory_order_release);
    return this->shared_from_this();
  }

  /// Drop cached partitions (used by fault-recovery tests).
  void uncache_all() {
    const std::scoped_lock lock(cache_mutex_);
    cache_.clear();
  }

  [[nodiscard]] bool is_cached() const {
    return cached_.load(std::memory_order_acquire);
  }

  // --- transformations (lazy, narrow) ---

  template <typename F>
  [[nodiscard]] auto map(F fn, std::string name = "map") const;

  template <typename F>
  [[nodiscard]] std::shared_ptr<Rdd<T>> filter(F pred,
                                               std::string name = "filter") const;

  /// fn: (partition_index, std::vector<T>&&) -> std::vector<U>
  template <typename F>
  [[nodiscard]] auto map_partitions(F fn,
                                    std::string name = "mapPartitions") const;

 private:
  std::atomic<bool> cached_{false};
  mutable std::mutex cache_mutex_;
  mutable std::vector<std::optional<std::vector<T>>> cache_;
};

// --- concrete RDDs ---

/// Source: an in-driver vector split into `partitions` contiguous chunks
/// (Spark's parallelize).
template <typename T>
class ParallelizeRdd final : public Rdd<T> {
 public:
  ParallelizeRdd(std::vector<T> data, u32 partitions)
      : Rdd<T>("parallelize", std::max<u32>(1, partitions), {}),
        data_(std::make_shared<const std::vector<T>>(std::move(data))) {}

  [[nodiscard]] std::vector<T> compute(u32 p) const override {
    const u64 n = data_->size();
    const u32 parts = this->num_partitions();
    const u64 begin = n * p / parts;
    const u64 end = n * (p + 1) / parts;
    return std::vector<T>(data_->begin() + static_cast<long>(begin),
                          data_->begin() + static_cast<long>(end));
  }

 private:
  std::shared_ptr<const std::vector<T>> data_;
};

/// Source: partitions produced by a user function (used for generated data
/// that should not be materialized in the driver first).
template <typename T>
class GeneratorRdd final : public Rdd<T> {
 public:
  using Fn = std::function<std::vector<T>(u32)>;
  GeneratorRdd(Fn fn, u32 partitions, std::string name = "generator")
      : Rdd<T>(std::move(name), std::max<u32>(1, partitions), {}),
        fn_(std::move(fn)) {}

  [[nodiscard]] std::vector<T> compute(u32 p) const override { return fn_(p); }

 private:
  Fn fn_;
};

template <typename T, typename U, typename F>
class MapRdd final : public Rdd<U> {
 public:
  MapRdd(std::shared_ptr<const Rdd<T>> parent, F fn, std::string name)
      : Rdd<U>(std::move(name), parent->num_partitions(), {parent}),
        parent_(std::move(parent)),
        fn_(std::move(fn)) {}

  [[nodiscard]] std::vector<U> compute(u32 p) const override {
    std::vector<T> in = parent_->materialize(p);
    std::vector<U> out;
    out.reserve(in.size());
    for (auto& x : in) out.push_back(fn_(x));
    return out;
  }

 private:
  std::shared_ptr<const Rdd<T>> parent_;
  F fn_;
};

template <typename T, typename F>
class FilterRdd final : public Rdd<T> {
 public:
  FilterRdd(std::shared_ptr<const Rdd<T>> parent, F pred, std::string name)
      : Rdd<T>(std::move(name), parent->num_partitions(), {parent}),
        parent_(std::move(parent)),
        pred_(std::move(pred)) {}

  [[nodiscard]] std::vector<T> compute(u32 p) const override {
    std::vector<T> in = parent_->materialize(p);
    std::vector<T> out;
    for (auto& x : in) {
      if (pred_(x)) out.push_back(std::move(x));
    }
    return out;
  }

 private:
  std::shared_ptr<const Rdd<T>> parent_;
  F pred_;
};

template <typename T, typename U, typename F>
class MapPartitionsRdd final : public Rdd<U> {
 public:
  MapPartitionsRdd(std::shared_ptr<const Rdd<T>> parent, F fn, std::string name)
      : Rdd<U>(std::move(name), parent->num_partitions(), {parent}),
        parent_(std::move(parent)),
        fn_(std::move(fn)) {}

  [[nodiscard]] std::vector<U> compute(u32 p) const override {
    return fn_(p, parent_->materialize(p));
  }

 private:
  std::shared_ptr<const Rdd<T>> parent_;
  F fn_;
};

// --- transformation factories ---

template <typename T>
template <typename F>
auto Rdd<T>::map(F fn, std::string name) const {
  using U = std::invoke_result_t<F, const T&>;
  auto self = std::static_pointer_cast<const Rdd<T>>(this->shared_from_this());
  return std::static_pointer_cast<Rdd<U>>(
      std::make_shared<MapRdd<T, U, F>>(self, std::move(fn), std::move(name)));
}

template <typename T>
template <typename F>
std::shared_ptr<Rdd<T>> Rdd<T>::filter(F pred, std::string name) const {
  auto self = std::static_pointer_cast<const Rdd<T>>(this->shared_from_this());
  return std::static_pointer_cast<Rdd<T>>(
      std::make_shared<FilterRdd<T, F>>(self, std::move(pred), std::move(name)));
}

template <typename T>
template <typename F>
auto Rdd<T>::map_partitions(F fn, std::string name) const {
  using Ret = std::invoke_result_t<F, u32, std::vector<T>&&>;
  using U = typename Ret::value_type;
  auto self = std::static_pointer_cast<const Rdd<T>>(this->shared_from_this());
  return std::static_pointer_cast<Rdd<U>>(
      std::make_shared<MapPartitionsRdd<T, U, F>>(self, std::move(fn),
                                                  std::move(name)));
}

}  // namespace sdb::minispark
