// Additional narrow RDD transformations: flat_map, union, zip_with_index,
// sample, glom. All are shuffle-free (narrow), preserving the library's
// invariant that only the MapReduce substrate materializes wide
// dependencies.
#pragma once

#include "minispark/rdd.hpp"
#include "util/rng.hpp"

namespace sdb::minispark {

template <typename T, typename U, typename F>
class FlatMapRdd final : public Rdd<U> {
 public:
  FlatMapRdd(std::shared_ptr<const Rdd<T>> parent, F fn, std::string name)
      : Rdd<U>(std::move(name), parent->num_partitions(), {parent}),
        parent_(std::move(parent)),
        fn_(std::move(fn)) {}

  [[nodiscard]] std::vector<U> compute(u32 p) const override {
    std::vector<T> in = parent_->materialize(p);
    std::vector<U> out;
    for (auto& x : in) {
      auto produced = fn_(x);
      out.insert(out.end(), std::make_move_iterator(produced.begin()),
                 std::make_move_iterator(produced.end()));
    }
    return out;
  }

 private:
  std::shared_ptr<const Rdd<T>> parent_;
  F fn_;
};

/// Union of two RDDs: partitions of `left` followed by partitions of
/// `right` (Spark's union does exactly this — no dedup).
template <typename T>
class UnionRdd final : public Rdd<T> {
 public:
  UnionRdd(std::shared_ptr<const Rdd<T>> left,
           std::shared_ptr<const Rdd<T>> right)
      : Rdd<T>("union", left->num_partitions() + right->num_partitions(),
               {left, right}),
        left_(std::move(left)),
        right_(std::move(right)) {}

  [[nodiscard]] std::vector<T> compute(u32 p) const override {
    if (p < left_->num_partitions()) return left_->materialize(p);
    return right_->materialize(p - left_->num_partitions());
  }

  [[nodiscard]] std::vector<u32> preferred_locations(u32 p) const override {
    if (p < left_->num_partitions()) return left_->preferred_locations(p);
    return right_->preferred_locations(p - left_->num_partitions());
  }

 private:
  std::shared_ptr<const Rdd<T>> left_;
  std::shared_ptr<const Rdd<T>> right_;
};

/// Pair each element with its global index. Requires parent partition sizes,
/// which Spark obtains with a lightweight count job; here the sizes are
/// computed lazily and memoized (deterministic, so lineage-safe).
template <typename T>
class ZipWithIndexRdd final : public Rdd<std::pair<T, u64>> {
 public:
  explicit ZipWithIndexRdd(std::shared_ptr<const Rdd<T>> parent)
      : Rdd<std::pair<T, u64>>("zipWithIndex", parent->num_partitions(),
                               {parent}),
        parent_(std::move(parent)) {}

  [[nodiscard]] std::vector<std::pair<T, u64>> compute(u32 p) const override {
    u64 offset = 0;
    for (u32 q = 0; q < p; ++q) offset += partition_size(q);
    std::vector<T> in = parent_->materialize(p);
    std::vector<std::pair<T, u64>> out;
    out.reserve(in.size());
    for (auto& x : in) out.emplace_back(std::move(x), offset++);
    return out;
  }

 private:
  [[nodiscard]] u64 partition_size(u32 q) const {
    const std::scoped_lock lock(mutex_);
    if (sizes_.size() <= q) sizes_.resize(parent_->num_partitions(), ~0ull);
    if (sizes_[q] == ~0ull) sizes_[q] = parent_->materialize(q).size();
    return sizes_[q];
  }

  std::shared_ptr<const Rdd<T>> parent_;
  mutable std::mutex mutex_;
  mutable std::vector<u64> sizes_;
};

/// Bernoulli sample without replacement: each element kept independently
/// with probability `fraction`, deterministic per (seed, partition).
template <typename T>
class SampleRdd final : public Rdd<T> {
 public:
  SampleRdd(std::shared_ptr<const Rdd<T>> parent, double fraction, u64 seed)
      : Rdd<T>("sample", parent->num_partitions(), {parent}),
        parent_(std::move(parent)),
        fraction_(fraction),
        seed_(seed) {}

  [[nodiscard]] std::vector<T> compute(u32 p) const override {
    Rng rng(derive_seed(seed_, "sample-" + std::to_string(p)));
    std::vector<T> in = parent_->materialize(p);
    std::vector<T> out;
    for (auto& x : in) {
      if (rng.chance(fraction_)) out.push_back(std::move(x));
    }
    return out;
  }

 private:
  std::shared_ptr<const Rdd<T>> parent_;
  double fraction_;
  u64 seed_;
};

/// Collapse each partition into a single vector element (Spark's glom).
template <typename T>
class GlomRdd final : public Rdd<std::vector<T>> {
 public:
  explicit GlomRdd(std::shared_ptr<const Rdd<T>> parent)
      : Rdd<std::vector<T>>("glom", parent->num_partitions(), {parent}),
        parent_(std::move(parent)) {}

  [[nodiscard]] std::vector<std::vector<T>> compute(u32 p) const override {
    std::vector<std::vector<T>> out;
    out.push_back(parent_->materialize(p));
    return out;
  }

 private:
  std::shared_ptr<const Rdd<T>> parent_;
};

// --- factory helpers (free functions; keep Rdd<T> itself lean) ---

template <typename T, typename F>
auto flat_map(std::shared_ptr<const Rdd<T>> rdd, F fn,
              std::string name = "flatMap") {
  using Produced = std::invoke_result_t<F, T&>;
  using U = typename Produced::value_type;
  return std::static_pointer_cast<Rdd<U>>(
      std::make_shared<FlatMapRdd<T, U, F>>(std::move(rdd), std::move(fn),
                                            std::move(name)));
}

template <typename T>
std::shared_ptr<Rdd<T>> union_rdds(std::shared_ptr<const Rdd<T>> left,
                                   std::shared_ptr<const Rdd<T>> right) {
  return std::make_shared<UnionRdd<T>>(std::move(left), std::move(right));
}

template <typename T>
std::shared_ptr<Rdd<std::pair<T, u64>>> zip_with_index(
    std::shared_ptr<const Rdd<T>> rdd) {
  return std::make_shared<ZipWithIndexRdd<T>>(std::move(rdd));
}

template <typename T>
std::shared_ptr<Rdd<T>> sample(std::shared_ptr<const Rdd<T>> rdd,
                               double fraction, u64 seed) {
  return std::make_shared<SampleRdd<T>>(std::move(rdd), fraction, seed);
}

template <typename T>
std::shared_ptr<Rdd<std::vector<T>>> glom(std::shared_ptr<const Rdd<T>> rdd) {
  return std::make_shared<GlomRdd<T>>(std::move(rdd));
}

}  // namespace sdb::minispark
