// Minimal leveled logger (stderr). Thread-safe, printf-style.
#pragma once

#include <cstdarg>

namespace sdb {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Set the minimum level that is emitted (default: kInfo).
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emit one log line: "[level] <component>: <message>".
void log(LogLevel level, const char* component, const char* fmt, ...)
    __attribute__((format(printf, 3, 4)));

}  // namespace sdb

#define SDB_LOG_DEBUG(component, ...) \
  ::sdb::log(::sdb::LogLevel::kDebug, component, __VA_ARGS__)
#define SDB_LOG_INFO(component, ...) \
  ::sdb::log(::sdb::LogLevel::kInfo, component, __VA_ARGS__)
#define SDB_LOG_WARN(component, ...) \
  ::sdb::log(::sdb::LogLevel::kWarn, component, __VA_ARGS__)
#define SDB_LOG_ERROR(component, ...) \
  ::sdb::log(::sdb::LogLevel::kError, component, __VA_ARGS__)
