#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace sdb {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};
std::mutex g_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void log(LogLevel level, const char* component, const char* fmt, ...) {
  if (static_cast<int>(level) < g_level.load(std::memory_order_relaxed)) {
    return;
  }
  std::va_list args;
  va_start(args, fmt);
  char buf[2048];
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  const std::scoped_lock lock(g_mutex);
  std::fprintf(stderr, "[%s] %s: %s\n", level_name(level), component, buf);
}

}  // namespace sdb
