// Instrumented work counters.
//
// The paper evaluates on a 512-core Cray; this reproduction runs on a
// commodity host, so scaling figures are produced on a *simulated cluster
// clock*. The primitive inputs to that clock are exact counts of the
// algorithm's unit operations, collected here: distance evaluations, kd-tree
// node visits, hash-table operations (the paper's Hashtable discussion,
// Section III.B), queue operations (the LinkedList discussion), bytes moved,
// and merge steps. The minispark cost model converts counts to simulated
// seconds (see minispark/cost_model.hpp).
//
// Collection is thread-local and scope-based:
//   WorkCounters wc;
//   { ScopedCounters scope(&wc);  ...hot code...; }
//   // wc now holds every operation performed in the scope on this thread.
//
// There are no process-global counter atomics anywhere on the hot path:
// every increment lands in the calling thread's active sink, and cross-
// thread totals exist only on demand — whoever owns the sinks aggregates
// them with operator+= after the threads join. Concurrent query threads
// therefore never share a counter cache line.
//
// Batching: the per-increment helpers below each cost one thread-local
// lookup. Hot loops (index queries, local_dbscan's expansion sweep) instead
// tally into a plain local WorkCounters (or plain u64 locals) and flush once
// per call through counters::add — the totals any enclosing scope observes
// are exactly the same, there is just one TLS access per query instead of
// one per operation.
#pragma once

#include "util/common.hpp"

namespace sdb {

struct WorkCounters {
  u64 distance_evals = 0;    ///< full d-dimensional distance computations
  u64 tree_nodes = 0;        ///< kd-tree / grid cells visited
  u64 hash_ops = 0;          ///< visited-set / membership table operations
  u64 queue_ops = 0;         ///< frontier push/pop operations
  u64 points_processed = 0;  ///< points whose neighborhood was expanded
  u64 seed_ops = 0;          ///< SEED bookkeeping steps (Algorithm 3)
  u64 merge_ops = 0;         ///< driver-side merge steps (Algorithm 4)
  u64 bytes_read = 0;        ///< bytes read from (mini-)DFS or spill files
  u64 bytes_written = 0;     ///< bytes written to (mini-)DFS or spill files
  u64 net_bytes = 0;         ///< bytes shipped executor<->driver (network)
  u64 codec_bytes = 0;       ///< bytes pushed through (de)serialization CPU
  u64 dfs_failovers = 0;     ///< reads that skipped a dead primary replica
  /// High-water mark of the BFS expansion frontier (a gauge, not a count:
  /// combined by max, excluded from total_ops). Guards against the
  /// duplicate-enqueue blow-up where a dense cluster queued each point
  /// O(minpts) times.
  u64 frontier_peak = 0;

  WorkCounters& operator+=(const WorkCounters& o) {
    distance_evals += o.distance_evals;
    tree_nodes += o.tree_nodes;
    hash_ops += o.hash_ops;
    queue_ops += o.queue_ops;
    points_processed += o.points_processed;
    seed_ops += o.seed_ops;
    merge_ops += o.merge_ops;
    bytes_read += o.bytes_read;
    bytes_written += o.bytes_written;
    net_bytes += o.net_bytes;
    codec_bytes += o.codec_bytes;
    dfs_failovers += o.dfs_failovers;
    if (o.frontier_peak > frontier_peak) frontier_peak = o.frontier_peak;
    return *this;
  }

  [[nodiscard]] u64 total_ops() const {
    return distance_evals + tree_nodes + hash_ops + queue_ops +
           points_processed + seed_ops + merge_ops;
  }
};

namespace counters {

/// The thread-local sink; null when no scope is active.
WorkCounters*& active();

inline void distance_evals(u64 n) {
  if (WorkCounters* c = active()) c->distance_evals += n;
}
inline void tree_nodes(u64 n) {
  if (WorkCounters* c = active()) c->tree_nodes += n;
}
inline void hash_ops(u64 n) {
  if (WorkCounters* c = active()) c->hash_ops += n;
}
inline void queue_ops(u64 n) {
  if (WorkCounters* c = active()) c->queue_ops += n;
}
inline void points_processed(u64 n) {
  if (WorkCounters* c = active()) c->points_processed += n;
}
inline void seed_ops(u64 n) {
  if (WorkCounters* c = active()) c->seed_ops += n;
}
inline void merge_ops(u64 n) {
  if (WorkCounters* c = active()) c->merge_ops += n;
}
inline void bytes_read(u64 n) {
  if (WorkCounters* c = active()) c->bytes_read += n;
}
inline void bytes_written(u64 n) {
  if (WorkCounters* c = active()) c->bytes_written += n;
}
inline void net_bytes(u64 n) {
  if (WorkCounters* c = active()) c->net_bytes += n;
}
inline void codec_bytes(u64 n) {
  if (WorkCounters* c = active()) c->codec_bytes += n;
}
inline void dfs_failovers(u64 n) {
  if (WorkCounters* c = active()) c->dfs_failovers += n;
}
/// Record the current frontier depth; the sink keeps the maximum.
inline void frontier_peak(u64 depth) {
  if (WorkCounters* c = active()) {
    if (depth > c->frontier_peak) c->frontier_peak = depth;
  }
}

/// Flush a locally-tallied batch into the active sink in one step (counts
/// add, frontier_peak combines by max — WorkCounters::operator+=). Exactness
/// contract: a call site that replaces N per-op increments with one add of
/// their tally produces byte-identical totals in every enclosing scope.
inline void add(const WorkCounters& batch) {
  if (WorkCounters* c = active()) *c += batch;
}

}  // namespace counters

/// RAII scope that directs this thread's counter increments into `sink`.
/// Scopes nest; the inner scope's counts are added to the outer sink when
/// the inner scope ends, so outer scopes observe totals.
class ScopedCounters {
 public:
  explicit ScopedCounters(WorkCounters* sink);
  ~ScopedCounters();

  ScopedCounters(const ScopedCounters&) = delete;
  ScopedCounters& operator=(const ScopedCounters&) = delete;

 private:
  WorkCounters* sink_;
  WorkCounters* previous_;
};

}  // namespace sdb
