// Wall-clock stopwatch used by benchmark harnesses.
#pragma once

#include <chrono>

namespace sdb {

/// Monotonic wall-clock stopwatch. Started on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restart the stopwatch and return the elapsed seconds up to now.
  double restart() {
    const auto now = Clock::now();
    const double s = std::chrono::duration<double>(now - start_).count();
    start_ = now;
    return s;
  }

  /// Elapsed seconds since construction or the last restart().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] double millis() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace sdb
