#include "util/counters.hpp"

namespace sdb {
namespace counters {

WorkCounters*& active() {
  thread_local WorkCounters* sink = nullptr;
  return sink;
}

}  // namespace counters

ScopedCounters::ScopedCounters(WorkCounters* sink)
    : sink_(sink), previous_(counters::active()) {
  counters::active() = sink_;
}

ScopedCounters::~ScopedCounters() {
  counters::active() = previous_;
  // Propagate to the enclosing scope so nesting accumulates naturally.
  if (previous_ != nullptr && sink_ != nullptr) {
    *previous_ += *sink_;
  }
}

}  // namespace sdb
