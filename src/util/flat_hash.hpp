// Open-addressing hash set/map for non-negative integer keys.
//
// The paper argues (Section III.B) that the executor's visited/membership
// structure must be O(1) per operation (Java Hashtable). This is the C++
// equivalent used on the hot path: linear-probing tables with power-of-two
// capacity, tombstone-free (no erase needed by the algorithm), and an
// explicit empty sentinel. `bench_micro_datastructs` compares it against
// std::unordered_set and sorted-vector alternatives.
#pragma once

#include <vector>

#include "util/common.hpp"

namespace sdb {

/// Hash set of non-negative i64 keys (PointId). Insert/contains only.
class FlatIdSet {
 public:
  explicit FlatIdSet(size_t expected = 16) { rehash(capacity_for(expected)); }

  /// Insert `key`; returns true if newly inserted.
  bool insert(i64 key) {
    SDB_DCHECK(key >= 0, "FlatIdSet keys must be non-negative");
    if ((size_ + 1) * 10 >= slots_.size() * 7) rehash(slots_.size() * 2);
    size_t i = probe_start(key);
    for (;;) {
      i64& slot = slots_[i];
      if (slot == kEmpty) {
        slot = key;
        ++size_;
        return true;
      }
      if (slot == key) return false;
      i = (i + 1) & mask_;
    }
  }

  [[nodiscard]] bool contains(i64 key) const {
    size_t i = probe_start(key);
    for (;;) {
      const i64 slot = slots_[i];
      if (slot == kEmpty) return false;
      if (slot == key) return true;
      i = (i + 1) & mask_;
    }
  }

  [[nodiscard]] size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  void clear() {
    std::fill(slots_.begin(), slots_.end(), kEmpty);
    size_ = 0;
  }

 private:
  static constexpr i64 kEmpty = -1;

  static size_t capacity_for(size_t expected) {
    size_t cap = 16;
    while (cap * 7 < expected * 10) cap *= 2;
    return cap;
  }

  [[nodiscard]] size_t probe_start(i64 key) const {
    // Fibonacci hashing of the key.
    const u64 h = static_cast<u64>(key) * 11400714819323198485ull;
    return static_cast<size_t>(h >> shift_) & mask_;
  }

  void rehash(size_t new_cap) {
    std::vector<i64> old = std::move(slots_);
    slots_.assign(new_cap, kEmpty);
    mask_ = new_cap - 1;
    shift_ = 64 - 6;
    // compute shift from capacity: log2(new_cap)
    unsigned bits = 0;
    for (size_t c = new_cap; c > 1; c >>= 1) ++bits;
    shift_ = 64 - bits;
    size_ = 0;
    for (const i64 k : old) {
      if (k != kEmpty) insert(k);
    }
  }

  std::vector<i64> slots_;
  size_t mask_ = 0;
  unsigned shift_ = 58;
  size_t size_ = 0;
};

/// Hash map from non-negative i64 keys to V. Insert/find/overwrite only.
template <typename V>
class FlatIdMap {
 public:
  explicit FlatIdMap(size_t expected = 16) {
    size_t cap = 16;
    while (cap * 7 < expected * 10) cap *= 2;
    rehash(cap);
  }

  /// Insert or overwrite. Returns true if the key was newly inserted.
  bool put(i64 key, V value) {
    SDB_DCHECK(key >= 0, "FlatIdMap keys must be non-negative");
    if ((size_ + 1) * 10 >= keys_.size() * 7) rehash(keys_.size() * 2);
    size_t i = probe_start(key);
    for (;;) {
      i64& slot = keys_[i];
      if (slot == kEmpty) {
        slot = key;
        values_[i] = std::move(value);
        ++size_;
        return true;
      }
      if (slot == key) {
        values_[i] = std::move(value);
        return false;
      }
      i = (i + 1) & mask_;
    }
  }

  /// Pointer to the value for `key`, or nullptr.
  [[nodiscard]] const V* find(i64 key) const {
    size_t i = probe_start(key);
    for (;;) {
      const i64 slot = keys_[i];
      if (slot == kEmpty) return nullptr;
      if (slot == key) return &values_[i];
      i = (i + 1) & mask_;
    }
  }

  [[nodiscard]] V* find(i64 key) {
    return const_cast<V*>(static_cast<const FlatIdMap*>(this)->find(key));
  }

  [[nodiscard]] size_t size() const { return size_; }

 private:
  static constexpr i64 kEmpty = -1;

  [[nodiscard]] size_t probe_start(i64 key) const {
    const u64 h = static_cast<u64>(key) * 11400714819323198485ull;
    return static_cast<size_t>(h >> shift_) & mask_;
  }

  void rehash(size_t new_cap) {
    std::vector<i64> old_keys = std::move(keys_);
    std::vector<V> old_values = std::move(values_);
    keys_.assign(new_cap, kEmpty);
    values_.assign(new_cap, V{});
    mask_ = new_cap - 1;
    unsigned bits = 0;
    for (size_t c = new_cap; c > 1; c >>= 1) ++bits;
    shift_ = 64 - bits;
    size_ = 0;
    for (size_t i = 0; i < old_keys.size(); ++i) {
      if (old_keys[i] != kEmpty) put(old_keys[i], std::move(old_values[i]));
    }
  }

  std::vector<i64> keys_;
  std::vector<V> values_;
  size_t mask_ = 0;
  unsigned shift_ = 58;
  size_t size_ = 0;
};

}  // namespace sdb
