#include "util/rng.hpp"

#include <algorithm>

namespace sdb {
namespace {

// 64-bit FNV-1a over a byte view; good enough for stream-name mixing.
u64 fnv1a(std::string_view s) {
  u64 h = 1469598103934665603ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

// SplitMix64 finalizer: decorrelates derived seeds.
u64 splitmix64(u64 x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

u64 derive_seed(u64 parent, std::string_view stream) {
  return splitmix64(parent ^ splitmix64(fnv1a(stream)));
}

Rng Rng::fork(std::string_view stream) const {
  // Fork from the original construction seed surrogate: hash the engine's
  // current state indirectly via a const copy draw. To keep fork() const and
  // deterministic regardless of how many draws happened, we derive from a
  // snapshot of the engine state.
  std::mt19937_64 copy = engine_;
  const u64 snapshot = copy();
  return Rng(derive_seed(snapshot, stream));
}

}  // namespace sdb
