// Bounded retry with exponential backoff + deterministic jitter.
//
// The recovery primitive behind every transient-fault path (MiniDfs block
// reads/writes, MapReduce spill reads): attempt the operation, and on a
// retriable exception back off exponentially — with jitter so a thundering
// herd of retries decorrelates — up to a bounded attempt count. The final
// failure is rethrown, so permanent faults still surface.
//
// Backoff is *accounted*, not slept, by default: tests and the simulated
// cluster clock want the schedule (RetryStats::backoff_s), not real wall
// delay on a 1-core host. Pass real_sleep=true for live systems.
//
// Jitter draws from an Rng stream derived from an explicit seed, so a retry
// schedule is bit-reproducible given (policy, seed) — the same contract as
// every other stochastic component in this repo.
#pragma once

#include <chrono>
#include <thread>

#include "util/common.hpp"
#include "util/rng.hpp"

namespace sdb {

struct RetryPolicy {
  u32 max_attempts = 4;          ///< total attempts (first try included)
  double initial_backoff_s = 0.010;
  double multiplier = 2.0;       ///< exponential growth per retry
  double max_backoff_s = 1.0;    ///< cap on a single backoff
  /// Uniform jitter fraction: each backoff is scaled by a factor drawn from
  /// [1 - jitter, 1 + jitter]. 0 = fully deterministic schedule.
  double jitter = 0.25;
  bool real_sleep = false;       ///< actually sleep the backoff (live mode)
};

struct RetryStats {
  u32 attempts = 0;       ///< attempts actually made
  u32 retries = 0;        ///< attempts - 1 when any retry happened
  double backoff_s = 0.0; ///< total backoff scheduled (simulated seconds)
};

/// The backoff scheduled before retry number `retry` (1-based), jittered.
inline double backoff_seconds(const RetryPolicy& policy, u32 retry, Rng& rng) {
  double backoff = policy.initial_backoff_s;
  for (u32 i = 1; i < retry; ++i) backoff *= policy.multiplier;
  if (backoff > policy.max_backoff_s) backoff = policy.max_backoff_s;
  if (policy.jitter > 0.0) {
    backoff *= rng.uniform(1.0 - policy.jitter, 1.0 + policy.jitter);
  }
  return backoff;
}

/// Run `fn` under the policy. `fn` signals a transient failure by throwing;
/// any exception is retriable. Returns fn's result on success; rethrows the
/// last failure once attempts are exhausted. `stats` (optional) receives the
/// attempt count and total scheduled backoff.
template <typename F>
auto retry_call(const RetryPolicy& policy, u64 seed, F&& fn,
                RetryStats* stats = nullptr) {
  SDB_CHECK(policy.max_attempts > 0, "retry policy needs >= 1 attempt");
  Rng rng(derive_seed(seed, "retry"));
  RetryStats local;
  RetryStats& s = stats != nullptr ? *stats : local;
  for (u32 attempt = 1;; ++attempt) {
    s.attempts = attempt;
    s.retries = attempt - 1;
    try {
      return fn();
    } catch (...) {
      if (attempt >= policy.max_attempts) throw;
      const double backoff = backoff_seconds(policy, attempt, rng);
      s.backoff_s += backoff;
      if (policy.real_sleep) {
        std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
      }
    }
  }
}

}  // namespace sdb
