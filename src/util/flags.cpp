#include "util/flags.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

namespace sdb {
namespace {

const char* type_name(int t) {
  switch (t) {
    case 0: return "int";
    case 1: return "float";
    case 2: return "bool";
    case 3: return "string";
  }
  return "?";
}

}  // namespace

void Flags::add_i64(const std::string& name, i64 v, const std::string& help) {
  Entry e;
  e.type = Type::kI64;
  e.help = help;
  e.i = v;
  entries_[name] = e;
}

void Flags::add_f64(const std::string& name, double v,
                    const std::string& help) {
  Entry e;
  e.type = Type::kF64;
  e.help = help;
  e.f = v;
  entries_[name] = e;
}

void Flags::add_bool(const std::string& name, bool v, const std::string& help) {
  Entry e;
  e.type = Type::kBool;
  e.help = help;
  e.b = v;
  entries_[name] = e;
}

void Flags::add_string(const std::string& name, const std::string& v,
                       const std::string& help) {
  Entry e;
  e.type = Type::kString;
  e.help = help;
  e.s = v;
  entries_[name] = e;
}

std::string Flags::usage(const std::string& program) const {
  std::ostringstream os;
  os << "usage: " << program << " [flags]\n";
  for (const auto& [name, e] : entries_) {
    os << "  --" << name << " (" << type_name(static_cast<int>(e.type))
       << ") : " << e.help << " [default: ";
    switch (e.type) {
      case Type::kI64: os << e.i; break;
      case Type::kF64: os << e.f; break;
      case Type::kBool: os << (e.b ? "true" : "false"); break;
      case Type::kString: os << '"' << e.s << '"'; break;
    }
    os << "]\n";
  }
  return os.str();
}

void Flags::set_from_string(const std::string& name, const std::string& value) {
  auto it = entries_.find(name);
  SDB_CHECK(it != entries_.end(), "unknown flag --" + name);
  Entry& e = it->second;
  try {
    switch (e.type) {
      case Type::kI64: e.i = std::stoll(value); break;
      case Type::kF64: e.f = std::stod(value); break;
      case Type::kBool:
        if (value == "true" || value == "1") {
          e.b = true;
        } else if (value == "false" || value == "0") {
          e.b = false;
        } else {
          throw std::invalid_argument("bad bool");
        }
        break;
      case Type::kString: e.s = value; break;
    }
  } catch (const std::exception&) {
    SDB_CHECK(false, "bad value for flag --" + name + ": " + value);
  }
}

void Flags::parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(usage(argv[0]).c_str(), stdout);
      std::exit(0);
    }
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      set_from_string(arg.substr(0, eq), arg.substr(eq + 1));
      continue;
    }
    // "--flag value" form; a bare boolean flag means "true".
    auto it = entries_.find(arg);
    SDB_CHECK(it != entries_.end(), "unknown flag --" + arg);
    if (it->second.type == Type::kBool &&
        (i + 1 >= argc || std::string(argv[i + 1]).rfind("--", 0) == 0)) {
      it->second.b = true;
      continue;
    }
    SDB_CHECK(i + 1 < argc, "flag --" + arg + " expects a value");
    set_from_string(arg, argv[++i]);
  }
}

const Flags::Entry& Flags::lookup(const std::string& name, Type type) const {
  auto it = entries_.find(name);
  SDB_CHECK(it != entries_.end(), "flag not registered: " + name);
  SDB_CHECK(it->second.type == type, "flag type mismatch: " + name);
  return it->second;
}

i64 Flags::i64_flag(const std::string& name) const {
  return lookup(name, Type::kI64).i;
}

double Flags::f64(const std::string& name) const {
  return lookup(name, Type::kF64).f;
}

bool Flags::boolean(const std::string& name) const {
  return lookup(name, Type::kBool).b;
}

const std::string& Flags::string(const std::string& name) const {
  return lookup(name, Type::kString).s;
}

}  // namespace sdb
