// Deterministic random number generation.
//
// Every stochastic component in the reproduction (data generators, straggler
// model, fault injection, partition shuffling) draws from an sdb::Rng seeded
// from an explicit value, so all experiments are bit-reproducible.
#pragma once

#include <algorithm>
#include <cstdint>
#include <random>
#include <string_view>

#include "util/common.hpp"

namespace sdb {

/// Derive a child seed from a parent seed and a stream name.
/// Used to give independent deterministic streams to subcomponents
/// ("generator", "straggler", "faults", ...) from one experiment seed.
u64 derive_seed(u64 parent, std::string_view stream);

/// Thin deterministic wrapper around mt19937_64 with convenience samplers.
class Rng {
 public:
  explicit Rng(u64 seed) : engine_(seed) {}

  /// Child generator with an independent stream.
  [[nodiscard]] Rng fork(std::string_view stream) const;

  /// Uniform in [0, 1).
  double uniform() { return unit_(engine_); }

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). n must be > 0.
  u64 uniform_index(u64 n) {
    SDB_DCHECK(n > 0, "uniform_index needs n > 0");
    return std::uniform_int_distribution<u64>(0, n - 1)(engine_);
  }

  /// Standard normal.
  double normal() { return normal_(engine_); }

  /// Normal with the given mean / standard deviation.
  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Exponential with the given rate.
  double exponential(double rate) {
    return std::exponential_distribution<double>(rate)(engine_);
  }

  /// Bernoulli trial.
  bool chance(double p) { return uniform() < p; }

  /// Fisher-Yates shuffle.
  template <typename Container>
  void shuffle(Container& c) {
    std::shuffle(c.begin(), c.end(), engine_);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  u64 seed_of_fork_ = 0;  // retained for debugging only
  std::mt19937_64 engine_;
  std::uniform_real_distribution<double> unit_{0.0, 1.0};
  std::normal_distribution<double> normal_{0.0, 1.0};

  friend u64 derive_seed(u64, std::string_view);
};

}  // namespace sdb
