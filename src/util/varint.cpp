#include "util/varint.hpp"

#include <algorithm>

namespace sdb {

void put_id_list(std::vector<char>& out, std::vector<i64> ids) {
  std::sort(ids.begin(), ids.end());
  put_varint(out, ids.size());
  i64 previous = 0;
  for (const i64 id : ids) {
    put_varint(out, zigzag(id - previous));
    previous = id;
  }
}

std::vector<i64> get_id_list(const char* data, size_t size, size_t& pos) {
  const u64 n = get_varint(data, size, pos);
  std::vector<i64> ids;
  ids.reserve(n);
  i64 previous = 0;
  for (u64 i = 0; i < n; ++i) {
    previous += unzigzag(get_varint(data, size, pos));
    ids.push_back(previous);
  }
  return ids;
}

}  // namespace sdb
