#include "util/serialize.hpp"

#include <cstdio>

#include "util/counters.hpp"

namespace sdb {

void write_file(const std::string& path, const std::vector<char>& data) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  SDB_CHECK(f != nullptr, "cannot open for write: " + path);
  if (!data.empty()) {
    const size_t n = std::fwrite(data.data(), 1, data.size(), f);
    SDB_CHECK(n == data.size(), "short write: " + path);
  }
  std::fclose(f);
  counters::bytes_written(data.size());
}

std::vector<char> read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  SDB_CHECK(f != nullptr, "cannot open for read: " + path);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  SDB_CHECK(size >= 0, "ftell failed: " + path);
  std::fseek(f, 0, SEEK_SET);
  std::vector<char> data(static_cast<size_t>(size));
  if (size > 0) {
    const size_t n = std::fread(data.data(), 1, data.size(), f);
    SDB_CHECK(n == data.size(), "short read: " + path);
  }
  std::fclose(f);
  counters::bytes_read(data.size());
  return data;
}

}  // namespace sdb
