// Basic shared definitions for the sparkdbscan libraries.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string_view>

namespace sdb {

using i32 = std::int32_t;
using i64 = std::int64_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;

/// Index of a point in the global dataset. The paper's SEED mechanism is
/// defined entirely in terms of global point indices, so this type appears
/// throughout the partitioned-DBSCAN code.
using PointId = std::int64_t;

/// Identifier of a data partition (== executor task in the Spark layer).
using PartitionId = std::int32_t;

/// Cluster label. kNoise / kUnlabeled are sentinels.
using ClusterId = std::int64_t;
inline constexpr ClusterId kNoise = -1;
inline constexpr ClusterId kUnlabeled = -2;

[[noreturn]] inline void fatal(const char* file, int line, const char* expr,
                               std::string_view msg) {
  std::fprintf(stderr, "[sdb fatal] %s:%d: check `%s` failed: %.*s\n", file,
               line, expr, static_cast<int>(msg.size()), msg.data());
  std::abort();
}

}  // namespace sdb

/// Always-on invariant check (benchmarked code avoids it on hot paths).
#define SDB_CHECK(expr, msg)                      \
  do {                                            \
    if (!(expr)) {                                \
      ::sdb::fatal(__FILE__, __LINE__, #expr, msg); \
    }                                             \
  } while (0)

/// Debug-only check: compiled out in NDEBUG builds.
#ifdef NDEBUG
#define SDB_DCHECK(expr, msg) ((void)0)
#else
#define SDB_DCHECK(expr, msg) SDB_CHECK(expr, msg)
#endif
