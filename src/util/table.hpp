// ASCII table / CSV renderer for the benchmark harnesses.
//
// Each bench binary prints the same rows/series the paper's table or figure
// reports; TablePrinter keeps that output aligned and machine-readable.
#pragma once

#include <string>
#include <vector>

#include "util/common.hpp"

namespace sdb {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Append one row; the cell count must match the header count.
  void add_row(std::vector<std::string> cells);

  /// Convenience: format doubles/ints into cells.
  static std::string cell(double v, int precision = 3);
  static std::string cell(i64 v);
  static std::string cell(u64 v);

  /// Render as an aligned ASCII table.
  [[nodiscard]] std::string to_ascii() const;

  /// Render as CSV (RFC-4180-ish quoting for commas/quotes).
  [[nodiscard]] std::string to_csv() const;

  /// Print the ASCII table to stdout with an optional title line.
  void print(const std::string& title = "") const;

  [[nodiscard]] size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace sdb
