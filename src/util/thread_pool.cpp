#include "util/thread_pool.hpp"

#include <stdexcept>

namespace sdb {

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) threads = 1;
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::scoped_lock lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> fn) {
  std::packaged_task<void()> task(std::move(fn));
  auto fut = task.get_future();
  {
    const std::scoped_lock lock(mutex_);
    if (stop_) throw std::runtime_error("ThreadPool is shutting down");
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
  return fut;
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();  // exceptions are captured in the packaged_task's future
    {
      const std::scoped_lock lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace sdb
