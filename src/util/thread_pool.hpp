// Fixed-size thread pool used by the minispark executor backend.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "util/common.hpp"

namespace sdb {

/// A classic fixed-size worker pool. Tasks are std::function<void()>;
/// submit() returns a future for completion/exception propagation.
///
/// The pool is used by minispark's threaded executor backend. On a
/// single-core host it still provides correct concurrent semantics (the
/// simulated-clock backend is what produces the paper's scaling curves).
class ThreadPool {
 public:
  /// Spawns `threads` workers (at least 1).
  explicit ThreadPool(unsigned threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task. Never blocks. Throws std::runtime_error if the pool is
  /// shutting down.
  std::future<void> submit(std::function<void()> fn);

  /// Number of worker threads.
  [[nodiscard]] unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  /// Block until every task submitted so far has finished.
  void wait_idle();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::packaged_task<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  u64 active_ = 0;
  bool stop_ = false;
};

}  // namespace sdb
