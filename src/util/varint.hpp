// LEB128-style variable-length integer coding plus zigzag, the building
// block of the compact partial-cluster codec (the paper's Section IV.B note:
// "choosing an appropriate data serialization format that is both fast and
// compact" matters because broadcast/accumulator bytes ride the network
// model).
#pragma once

#include <string>
#include <vector>

#include "util/common.hpp"

namespace sdb {

/// Append `v` to `out` as unsigned LEB128 (1-10 bytes).
inline void put_varint(std::vector<char>& out, u64 v) {
  while (v >= 0x80) {
    out.push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<char>(v));
}

/// Decode one varint from data[pos...], advancing pos. Aborts on truncation
/// or overlong (>10 byte) encodings.
inline u64 get_varint(const char* data, size_t size, size_t& pos) {
  u64 v = 0;
  int shift = 0;
  for (int i = 0; i < 10; ++i) {
    SDB_CHECK(pos < size, "varint: truncated input");
    const auto byte = static_cast<unsigned char>(data[pos++]);
    v |= static_cast<u64>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return v;
    shift += 7;
  }
  SDB_CHECK(false, "varint: overlong encoding");
  return 0;
}

/// Zigzag mapping: small-magnitude signed values -> small unsigned values.
inline u64 zigzag(i64 v) {
  return (static_cast<u64>(v) << 1) ^ static_cast<u64>(v >> 63);
}
inline i64 unzigzag(u64 v) {
  return static_cast<i64>(v >> 1) ^ -static_cast<i64>(v & 1);
}

/// Sorted-id list codec: sort ascending, delta-encode, varint each delta.
/// Point-id lists inside a partial cluster are dense per partition, so the
/// deltas are tiny — this is where the compact codec wins its bytes.
void put_id_list(std::vector<char>& out, std::vector<i64> ids);
std::vector<i64> get_id_list(const char* data, size_t size, size_t& pos);

}  // namespace sdb
