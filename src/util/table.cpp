#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace sdb {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  SDB_CHECK(!headers_.empty(), "table needs at least one column");
}

void TablePrinter::add_row(std::vector<std::string> cells) {
  SDB_CHECK(cells.size() == headers_.size(), "row/header arity mismatch");
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::cell(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TablePrinter::cell(i64 v) { return std::to_string(v); }
std::string TablePrinter::cell(u64 v) { return std::to_string(v); }

std::string TablePrinter::to_ascii() const {
  std::vector<size_t> width(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    os << '|';
    for (size_t c = 0; c < row.size(); ++c) {
      os << ' ' << row[c] << std::string(width[c] - row[c].size(), ' ')
         << " |";
    }
    os << '\n';
  };
  auto emit_rule = [&] {
    os << '+';
    for (const size_t w : width) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  emit_rule();
  emit_row(headers_);
  emit_rule();
  for (const auto& row : rows_) emit_row(row);
  emit_rule();
  return os.str();
}

std::string TablePrinter::to_csv() const {
  auto quote = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (const char ch : s) {
      if (ch == '"') out += "\"\"";
      else out += ch;
    }
    out += '"';
    return out;
  };
  std::ostringstream os;
  for (size_t c = 0; c < headers_.size(); ++c) {
    os << (c ? "," : "") << quote(headers_[c]);
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << (c ? "," : "") << quote(row[c]);
    }
    os << '\n';
  }
  return os.str();
}

void TablePrinter::print(const std::string& title) const {
  if (!title.empty()) std::printf("%s\n", title.c_str());
  std::fputs(to_ascii().c_str(), stdout);
  std::fflush(stdout);
}

}  // namespace sdb
