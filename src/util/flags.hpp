// Tiny command-line flag parser for the bench harnesses and examples.
//
// Usage:
//   sdb::Flags flags;
//   flags.add_i64("cores", 8, "number of simulated cores");
//   flags.add_string("dataset", "c10k", "Table I preset name");
//   flags.parse(argc, argv);             // accepts --name=value / --name value
//   i64 cores = flags.i64("cores");
#pragma once

#include <map>
#include <string>
#include <vector>

#include "util/common.hpp"

namespace sdb {

class Flags {
 public:
  void add_i64(const std::string& name, i64 default_value,
               const std::string& help);
  void add_f64(const std::string& name, double default_value,
               const std::string& help);
  void add_bool(const std::string& name, bool default_value,
                const std::string& help);
  void add_string(const std::string& name, const std::string& default_value,
                  const std::string& help);

  /// Parse argv. Unknown flags or malformed values abort with a usage dump.
  /// `--help` prints usage and exits(0). Positional arguments are collected
  /// into positional().
  void parse(int argc, char** argv);

  [[nodiscard]] i64 i64_flag(const std::string& name) const;
  [[nodiscard]] double f64(const std::string& name) const;
  [[nodiscard]] bool boolean(const std::string& name) const;
  [[nodiscard]] const std::string& string(const std::string& name) const;
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

  /// Render the usage text (also shown on --help).
  [[nodiscard]] std::string usage(const std::string& program) const;

 private:
  enum class Type { kI64, kF64, kBool, kString };
  struct Entry {
    Type type;
    std::string help;
    i64 i = 0;
    double f = 0;
    bool b = false;
    std::string s;
  };

  const Entry& lookup(const std::string& name, Type type) const;
  void set_from_string(const std::string& name, const std::string& value);

  std::map<std::string, Entry> entries_;
  std::vector<std::string> positional_;
};

}  // namespace sdb
