// Binary serialization used by the DFS blocks, MapReduce spill files, and
// minispark's broadcast/accumulator size accounting.
//
// Format: little-endian fixed-width scalars, u64 length prefixes for
// strings/vectors. The writers/readers are deliberately simple: the goal is
// measurable byte volumes, not schema evolution.
#pragma once

#include <cstring>
#include <string>
#include <vector>

#include "util/common.hpp"

namespace sdb {

class BinaryWriter {
 public:
  void write_u8(u32 v) { buf_.push_back(static_cast<char>(v & 0xff)); }
  void write_u32(u32 v) { append(&v, sizeof(v)); }
  void write_u64(u64 v) { append(&v, sizeof(v)); }
  void write_i64(i64 v) { append(&v, sizeof(v)); }
  void write_f64(double v) { append(&v, sizeof(v)); }

  void write_string(const std::string& s) {
    write_u64(s.size());
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  /// Raw bytes, no length prefix (caller owns the framing).
  void write_bytes(const void* p, size_t n) { append(p, n); }

  void write_i64_vec(const std::vector<i64>& v) {
    write_u64(v.size());
    append(v.data(), v.size() * sizeof(i64));
  }

  void write_f64_vec(const std::vector<double>& v) {
    write_u64(v.size());
    append(v.data(), v.size() * sizeof(double));
  }

  [[nodiscard]] const std::vector<char>& buffer() const { return buf_; }
  [[nodiscard]] u64 size() const { return buf_.size(); }
  std::vector<char> take() { return std::move(buf_); }

 private:
  void append(const void* p, size_t n) {
    const char* c = static_cast<const char*>(p);
    buf_.insert(buf_.end(), c, c + n);
  }
  std::vector<char> buf_;
};

class BinaryReader {
 public:
  explicit BinaryReader(const std::vector<char>& buf)
      : data_(buf.data()), size_(buf.size()) {}
  BinaryReader(const char* data, size_t size) : data_(data), size_(size) {}

  u32 read_u8() { u32 v = static_cast<unsigned char>(peek(1)[0]); pos_ += 1; return v; }
  u32 read_u32() { return read_scalar<u32>(); }
  u64 read_u64() { return read_scalar<u64>(); }
  i64 read_i64() { return read_scalar<i64>(); }
  double read_f64() { return read_scalar<double>(); }

  std::string read_string() {
    const u64 n = read_u64();
    const char* p = peek(n);
    pos_ += n;
    return std::string(p, n);
  }

  std::vector<i64> read_i64_vec() { return read_vec<i64>(); }
  std::vector<double> read_f64_vec() { return read_vec<double>(); }

  [[nodiscard]] bool at_end() const { return pos_ == size_; }
  [[nodiscard]] size_t position() const { return pos_; }
  [[nodiscard]] size_t remaining() const { return size_ - pos_; }

 private:
  template <typename T>
  T read_scalar() {
    T v;
    std::memcpy(&v, peek(sizeof(T)), sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  template <typename T>
  std::vector<T> read_vec() {
    const u64 n = read_u64();
    std::vector<T> v(n);
    if (n > 0) {
      std::memcpy(v.data(), peek(n * sizeof(T)), n * sizeof(T));
      pos_ += n * sizeof(T);
    }
    return v;
  }

  const char* peek(size_t n) {
    SDB_CHECK(pos_ + n <= size_, "BinaryReader: truncated input");
    return data_ + pos_;
  }

  const char* data_;
  size_t size_;
  size_t pos_ = 0;
};

/// Write/read a whole buffer to/from a file. Aborts on IO failure.
void write_file(const std::string& path, const std::vector<char>& data);
std::vector<char> read_file(const std::string& path);

}  // namespace sdb
