#include "replica/sharded_cluster.hpp"

#include <algorithm>

namespace sdb::replica {

ShardedCluster::ShardedCluster(Options options, int dim)
    : options_(std::move(options)), ring_(options_.ring_vnodes) {
  SDB_CHECK(options_.shards >= 1, "a sharded cluster needs at least one shard");
  shard_ids_.reserve(options_.shards);
  shards_.reserve(options_.shards);
  for (size_t i = 0; i < options_.shards; ++i) {
    shard_ids_.push_back("shard-" + std::to_string(i));
    ring_.add_node(shard_ids_.back());
    ReplicaSet::Options opts = options_.replica;
    if (!opts.dir.empty()) opts.dir += "/shard_" + std::to_string(i);
    shards_.push_back(std::make_unique<ReplicaSet>(std::move(opts), dim));
  }
}

size_t ShardedCluster::shard_for(std::span<const double> point) const {
  const std::string& id = ring_.node_for(ConsistentHashRing::hash_point(point));
  const auto it = std::find(shard_ids_.begin(), shard_ids_.end(), id);
  return static_cast<size_t>(it - shard_ids_.begin());
}

std::optional<ShardedCluster::InsertResult> ShardedCluster::insert(
    std::span<const double> coords) {
  const size_t s = shard_for(coords);
  const std::optional<PointId> id = shards_[s]->insert(coords);
  if (!id.has_value()) return std::nullopt;
  return InsertResult{s, *id};
}

ReplicaSet::ClassifyResult ShardedCluster::classify(
    std::span<const double> point, size_t preferred_replica) const {
  return shards_[shard_for(point)]->classify(point, preferred_replica);
}

void ShardedCluster::bootstrap(const PointSet& points) {
  for (PointId i = 0; i < static_cast<PointId>(points.size()); ++i) {
    (void)shards_[shard_for(points[i])]->insert(points[i]);
  }
  publish_all();
}

void ShardedCluster::pump_all() {
  for (auto& s : shards_) s->pump();
}

void ShardedCluster::tick_all() {
  for (auto& s : shards_) s->tick();
}

void ShardedCluster::publish_all() {
  for (auto& s : shards_) (void)s->publish();
}

}  // namespace sdb::replica
