#include "replica/replica_set.hpp"

#include <algorithm>
#include <tuple>

#include "fault/injection.hpp"

namespace sdb::replica {

ReplicaSet::ReplicaSet(Options options, int dim)
    : options_(std::move(options)), dim_(dim) {
  SDB_CHECK(options_.replicas >= 1, "a replica set needs at least one node");
  nodes_.reserve(options_.replicas);
  for (size_t i = 0; i < options_.replicas; ++i) {
    serve::ModelRegistry::Config cfg = options_.registry;
    cfg.replicated = true;
    cfg.role = i == 0 ? serve::RegistryRole::kPrimary
                      : serve::RegistryRole::kFollower;
    cfg.wal_dir = node_dir(i);
    auto node = std::make_unique<Node>();
    auto registry = std::make_shared<serve::ModelRegistry>(cfg, dim);
    if (i != 0) node->applier = std::make_unique<Applier>(registry);
    node->registry.store(registry, std::memory_order_release);
    nodes_.push_back(std::move(node));
  }
  std::shared_ptr<serve::ModelRegistry> primary =
      nodes_[0]->registry.load(std::memory_order_relaxed);
  relay_ = std::make_unique<Relay>(primary, term_, options_.batch_records,
                                   options_.pipeline_batches);
  // The construction epoch (1, the empty model — or the recovered committed
  // epoch when restarting over durable WALs) is committed by definition:
  // its kPublish marker is the stream's own base, deterministic for every
  // node that replays it.
  const u64 e = primary->epoch();
  committed_epoch_.store(e, std::memory_order_release);
  committed_model_.store(primary->model(), std::memory_order_release);
  last_noted_epoch_ = e;
}

std::string ReplicaSet::node_dir(size_t node) const {
  if (options_.dir.empty()) return std::string();
  return options_.dir + "/node_" + std::to_string(node);
}

std::shared_ptr<serve::ModelRegistry> ReplicaSet::live_primary_locked() const {
  const Node& n = *nodes_[primary_index_.load(std::memory_order_relaxed)];
  if (!n.alive.load(std::memory_order_relaxed)) return nullptr;
  return n.registry.load(std::memory_order_relaxed);
}

std::optional<PointId> ReplicaSet::insert(std::span<const double> coords) {
  const std::scoped_lock lock(mu_);
  std::shared_ptr<serve::ModelRegistry> primary = live_primary_locked();
  if (primary == nullptr) return std::nullopt;
  const PointId id = primary->insert(coords);
  note_publishes_locked();  // publish_every cadence may have fired
  return id;
}

bool ReplicaSet::try_remove(PointId id) {
  const std::scoped_lock lock(mu_);
  std::shared_ptr<serve::ModelRegistry> primary = live_primary_locked();
  if (primary == nullptr) return false;
  const bool removed = primary->try_remove(id);
  note_publishes_locked();
  return removed;
}

std::optional<u64> ReplicaSet::publish() {
  const std::scoped_lock lock(mu_);
  std::shared_ptr<serve::ModelRegistry> primary = live_primary_locked();
  if (primary == nullptr) return std::nullopt;
  const u64 e = primary->publish();
  note_publishes_locked();
  return e;
}

std::optional<u64> ReplicaSet::compact() {
  const std::scoped_lock lock(mu_);
  std::shared_ptr<serve::ModelRegistry> primary = live_primary_locked();
  if (primary == nullptr) return std::nullopt;
  const u64 e = primary->compact();
  note_publishes_locked();
  return e;
}

void ReplicaSet::note_publishes_locked() {
  std::shared_ptr<serve::ModelRegistry> primary = live_primary_locked();
  if (primary == nullptr) return;
  // Epochs are sequential, so at most a handful are new since last noted;
  // each pending entry retains the exact model published at that epoch
  // (the registry only exposes the newest, and commit must install the
  // model MATCHING the committed epoch, not whatever is newest by then).
  const u64 e = primary->epoch();
  if (e > last_noted_epoch_) {
    // Only the newest model is observable; intermediate epochs (publish
    // cadence firing more than once between notes cannot happen — every
    // write notes) would be a bookkeeping bug.
    SDB_CHECK(e == last_noted_epoch_ + 1,
              "missed a publish between replication notes");
    pending_.push_back(PendingEpoch{e, primary->model()});
    last_noted_epoch_ = e;
  }
}

void ReplicaSet::pump() {
  const std::scoped_lock lock(mu_);
  const size_t primary_idx = primary_index_.load(std::memory_order_relaxed);
  const bool primary_live =
      nodes_[primary_idx]->alive.load(std::memory_order_relaxed);
  for (size_t i = 0; i < nodes_.size(); ++i) {
    Node& node = *nodes_[i];
    if (i == primary_idx || !node.alive.load(std::memory_order_relaxed)) {
      continue;
    }
    if (primary_live && relay_ != nullptr) {
      relay_->pump(*node.applier, node.transport);
    }
    // Drain the channel even with the primary dead: frames already in
    // flight are valid prefix data (or get term-fenced after promotion).
    while (std::optional<std::vector<char>> frame = node.transport.receive()) {
      node.applier->offer(*frame);
    }
  }
  advance_commits_locked();
}

void ReplicaSet::advance_commits_locked() {
  size_t live_followers = 0;
  const size_t primary_idx = primary_index_.load(std::memory_order_relaxed);
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (i != primary_idx && nodes_[i]->alive.load(std::memory_order_relaxed)) {
      ++live_followers;
    }
  }
  const size_t required = std::min(options_.ack_replicas, live_followers);
  while (!pending_.empty()) {
    const PendingEpoch& p = pending_.front();
    size_t acks = 0;
    for (size_t i = 0; i < nodes_.size(); ++i) {
      if (i == primary_idx || !nodes_[i]->alive.load(std::memory_order_relaxed))
        continue;
      if (nodes_[i]->applier->applied_epoch() >= p.epoch) ++acks;
    }
    if (acks < required) break;
    committed_epoch_.store(p.epoch, std::memory_order_release);
    committed_model_.store(p.model, std::memory_order_release);
    pending_.pop_front();
  }
}

void ReplicaSet::tick() {
  const std::scoped_lock lock(mu_);
  ++now_;
  const size_t primary_idx = primary_index_.load(std::memory_order_relaxed);
  if (nodes_[primary_idx]->alive.load(std::memory_order_relaxed)) {
    if (SDB_INJECT("replica.primary.kill")) {
      kill_primary_locked();
    } else {
      last_primary_heartbeat_ = now_;
    }
    return;
  }
  if (now_ - last_primary_heartbeat_ > options_.heartbeat_timeout) {
    maybe_promote_locked();
  }
}

void ReplicaSet::kill_primary() {
  const std::scoped_lock lock(mu_);
  kill_primary_locked();
}

void ReplicaSet::kill_primary_locked() {
  Node& n = *nodes_[primary_index_.load(std::memory_order_relaxed)];
  if (!n.alive.load(std::memory_order_relaxed)) return;
  // SIGKILL semantics: the process is gone mid-stream. In-flight frames it
  // already sent stay in the transports (the network does not die with the
  // sender); its durable WAL stays on disk. Readers holding the old
  // registry's model finish on it (RCU); new reads see the null and
  // redirect to the committed model.
  n.alive.store(false, std::memory_order_relaxed);
  n.registry.store(nullptr, std::memory_order_release);
  relay_.reset();
}

void ReplicaSet::maybe_promote_locked() {
  // Promote the live follower with the most stream: max (applied epoch,
  // generation, next_seq). By the prefix property every other live
  // follower's log is a prefix of the winner's, so shipping resumes from
  // their cursors with no divergence repair.
  size_t best = nodes_.size();
  std::tuple<u64, u64, u64> best_pos{0, 0, 0};
  const size_t primary_idx = primary_index_.load(std::memory_order_relaxed);
  for (size_t i = 0; i < nodes_.size(); ++i) {
    Node& node = *nodes_[i];
    if (i == primary_idx || !node.alive.load(std::memory_order_relaxed)) {
      continue;
    }
    const serve::ModelRegistry::StreamCursor cur = node.applier->cursor();
    const std::tuple<u64, u64, u64> pos{node.applier->applied_epoch(),
                                        cur.generation, cur.next_seq};
    if (best == nodes_.size() || pos > best_pos) {
      best = i;
      best_pos = pos;
    }
  }
  if (best == nodes_.size()) return;  // nobody left to promote

  Node& winner = *nodes_[best];
  std::shared_ptr<serve::ModelRegistry> registry =
      winner.registry.load(std::memory_order_relaxed);
  const u64 epoch = registry->promote_to_primary();
  ++term_;  // fences the dead primary's still-in-flight frames
  winner.applier.reset();
  winner.transport.clear();
  relay_ = std::make_unique<Relay>(registry, term_, options_.batch_records,
                                   options_.pipeline_batches);
  primary_index_.store(best, std::memory_order_release);
  last_primary_heartbeat_ = now_;
  failovers_.fetch_add(1, std::memory_order_relaxed);
  // Everything the winner applied is now the authoritative history; its
  // epoch can only be >= the committed watermark (the winner is the max
  // follower, and committed required a follower ack). Epochs the dead
  // primary published beyond this were never committed, never served
  // (primary reads serve the committed model), and are silently reassigned
  // by the new primary's future publishes.
  pending_.clear();
  if (epoch >= committed_epoch_.load(std::memory_order_relaxed)) {
    committed_epoch_.store(epoch, std::memory_order_release);
    committed_model_.store(registry->model(), std::memory_order_release);
  }
  last_noted_epoch_ = epoch;
}

ReplicaSet::ClassifyResult ReplicaSet::classify(std::span<const double> point,
                                                size_t preferred_node) const {
  const size_t n = preferred_node % nodes_.size();
  const u64 committed = committed_epoch_.load(std::memory_order_acquire);
  // Primary-targeted reads serve the committed model: a pending epoch may
  // die un-replicated with its primary, and an epoch that was never served
  // can be safely reassigned after failover.
  const bool to_primary = n == primary_index_.load(std::memory_order_acquire);
  std::shared_ptr<serve::ModelRegistry> registry =
      to_primary ? nullptr : nodes_[n]->registry.load(std::memory_order_acquire);
  if (registry != nullptr) {
    std::shared_ptr<const serve::ClusterModel> model = registry->model();
    if (committed <= model->epoch() + options_.staleness_bound) {
      return ClassifyResult{model->classify(point), model->epoch(), false};
    }
  }
  // Dead node, primary target, or staleness bound exceeded: serve the
  // committed model (always present, retained across failovers).
  stale_redirects_.fetch_add(!to_primary, std::memory_order_relaxed);
  std::shared_ptr<const serve::ClusterModel> model =
      committed_model_.load(std::memory_order_acquire);
  return ClassifyResult{model->classify(point), model->epoch(), !to_primary};
}

bool ReplicaSet::has_live_primary() const {
  return nodes_[primary_index_.load(std::memory_order_acquire)]->alive.load(
      std::memory_order_acquire);
}

bool ReplicaSet::alive(size_t node) const {
  return nodes_[node]->alive.load(std::memory_order_acquire);
}

u64 ReplicaSet::term() const {
  const std::scoped_lock lock(mu_);
  return term_;
}

std::shared_ptr<serve::ModelRegistry> ReplicaSet::node_registry(
    size_t node) const {
  return nodes_[node]->registry.load(std::memory_order_acquire);
}

Applier::Stats ReplicaSet::applier_stats(size_t node) const {
  const std::scoped_lock lock(mu_);
  return nodes_[node]->applier != nullptr ? nodes_[node]->applier->stats()
                                          : Applier::Stats{};
}

ShipTransport::Stats ReplicaSet::transport_stats(size_t node) const {
  const std::scoped_lock lock(mu_);
  return nodes_[node]->transport.stats();
}

}  // namespace sdb::replica
