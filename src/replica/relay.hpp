// Relay — the primary half of WAL shipping: one relay per primary, pumped
// once per follower per replication round.
//
// Each pump reads the follower's applied cursor and ships everything the
// primary's log holds past it, split into `batch_records`-sized frames, at
// most `pipeline_batches` batches ahead per pump (bounded in-flight data).
// Because the cursor only advances when the applier actually applies,
// re-pumping IS the retransmission protocol: dropped frames are shipped
// again, duplicated/reordered frames are deduped by the applier, and no
// ack/nack machinery exists at all.
//
// When the follower's cursor predates the primary's current WAL generation
// (the follower is so far behind that compaction discarded the records it
// needs — or it followed a previous primary), ship_from answers with the
// generation's base snapshot instead; the relay delivers it through the
// applier's snapshot handshake directly, modeling the out-of-band bulk
// channel real systems use for initial join (the record channel stays the
// only lossy one).
#pragma once

#include <cstddef>
#include <memory>

#include "serve/model_registry.hpp"

namespace sdb::replica {

class Applier;
class ShipTransport;

class Relay {
 public:
  Relay(std::shared_ptr<serve::ModelRegistry> primary, u64 term,
        size_t batch_records, size_t pipeline_batches);

  /// One replication round toward one follower: resync from its cursor.
  void pump(Applier& applier, ShipTransport& transport);

  [[nodiscard]] u64 term() const { return term_; }
  [[nodiscard]] u64 batches_shipped() const { return batches_shipped_; }
  [[nodiscard]] u64 snapshots_shipped() const { return snapshots_shipped_; }

 private:
  std::shared_ptr<serve::ModelRegistry> primary_;
  u64 term_;
  size_t batch_records_;
  size_t pipeline_batches_;
  u64 batches_shipped_ = 0;
  u64 snapshots_shipped_ = 0;
};

}  // namespace sdb::replica
