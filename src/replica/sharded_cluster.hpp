// ShardedCluster — consistent-hash routing over independent ReplicaSets.
//
// The top of the replicated serving tier: `shards` replica sets, each a
// full primary+followers group (replica_set.hpp), with every point routed
// to exactly one shard by hashing its raw coordinate bytes onto the ring
// (hash_ring.hpp). Routing is stateless and cross-process deterministic —
// any router (CLI, bench thread, another process) sends a given point to
// the same shard with no coordination.
//
// Scope notes:
//   * point ids are SHARD-LOCAL — an insert returns (shard, local id);
//     cross-shard id unification is a directory-service concern that this
//     subsystem deliberately leaves out;
//   * each shard clusters its own key range independently — the paper's
//     partition-then-merge story applies to the OFFLINE pipeline; the
//     serving tier shards for throughput/failure isolation, not for
//     cross-shard cluster identity.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "geom/point_set.hpp"
#include "replica/hash_ring.hpp"
#include "replica/replica_set.hpp"

namespace sdb::replica {

class ShardedCluster {
 public:
  struct Options {
    size_t shards = 2;
    u32 ring_vnodes = 64;
    ReplicaSet::Options replica;  ///< per-shard replication options
  };

  struct InsertResult {
    size_t shard = 0;
    PointId id = 0;  ///< shard-local id
  };

  ShardedCluster(Options options, int dim);

  /// The shard owning `point` (pure function of the point + shard count).
  [[nodiscard]] size_t shard_for(std::span<const double> point) const;

  /// Routed write; nullopt while the owning shard has no live primary.
  [[nodiscard]] std::optional<InsertResult> insert(
      std::span<const double> coords);
  /// Routed read against the preferred replica of the owning shard.
  [[nodiscard]] ReplicaSet::ClassifyResult classify(
      std::span<const double> point, size_t preferred_replica) const;

  /// Route every point of `points` to its shard, then publish each shard.
  void bootstrap(const PointSet& points);

  /// Drive every shard's replication round / failure-detector beat.
  void pump_all();
  void tick_all();
  void publish_all();

  [[nodiscard]] size_t shards() const { return shards_.size(); }
  [[nodiscard]] ReplicaSet& shard(size_t i) { return *shards_[i]; }
  [[nodiscard]] const ReplicaSet& shard(size_t i) const { return *shards_[i]; }
  [[nodiscard]] const ConsistentHashRing& ring() const { return ring_; }

 private:
  Options options_;
  ConsistentHashRing ring_;
  std::vector<std::string> shard_ids_;  ///< ring id -> index is position
  std::vector<std::unique_ptr<ReplicaSet>> shards_;
};

}  // namespace sdb::replica
