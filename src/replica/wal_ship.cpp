#include "replica/wal_ship.hpp"

#include <cstring>
#include <utility>

#include "fault/injection.hpp"
#include "util/serialize.hpp"

namespace sdb::replica {

namespace {

u64 fnv1a(const char* data, size_t size) {
  u64 h = 1469598103934665603ull;
  for (size_t i = 0; i < size; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

std::vector<char> encode_batch(const WalBatch& batch) {
  BinaryWriter payload;
  payload.write_u64(batch.term);
  payload.write_u64(batch.generation);
  payload.write_u64(batch.start_seq);
  payload.write_u64(batch.committed_epoch);
  payload.write_u32(static_cast<u32>(batch.records.size()));
  for (const serve::WalRecord& rec : batch.records) {
    const std::vector<char> bytes = serve::encode_wal_payload(rec);
    payload.write_u32(static_cast<u32>(bytes.size()));
    payload.write_bytes(bytes.data(), bytes.size());
  }
  BinaryWriter frame;
  frame.write_u32(static_cast<u32>(payload.size()));
  frame.write_bytes(payload.buffer().data(), payload.size());
  frame.write_u64(fnv1a(payload.buffer().data(), payload.size()));
  return frame.take();
}

bool decode_batch(const std::vector<char>& frame, WalBatch* batch) {
  // Outer frame: u32 len | payload | u64 checksum. Validate the checksum
  // BEFORE touching the payload — after it passes, the payload is byte-
  // identical to what encode_batch produced, so the structured reads below
  // cannot run off the end.
  if (frame.size() < sizeof(u32) + sizeof(u64)) return false;
  u32 len = 0;
  std::memcpy(&len, frame.data(), sizeof(len));
  if (frame.size() != sizeof(u32) + len + sizeof(u64)) return false;
  const char* payload = frame.data() + sizeof(u32);
  u64 sum = 0;
  std::memcpy(&sum, payload + len, sizeof(sum));
  if (sum != fnv1a(payload, len)) return false;

  BinaryReader r(payload, len);
  batch->term = r.read_u64();
  batch->generation = r.read_u64();
  batch->start_seq = r.read_u64();
  batch->committed_epoch = r.read_u64();
  const u32 count = r.read_u32();
  batch->records.clear();
  batch->records.reserve(count);
  size_t off = r.position();
  for (u32 i = 0; i < count; ++i) {
    if (len - off < sizeof(u32)) return false;
    u32 rec_len = 0;
    std::memcpy(&rec_len, payload + off, sizeof(rec_len));
    off += sizeof(rec_len);
    if (rec_len > len - off) return false;
    serve::WalRecord rec;
    if (!serve::decode_wal_payload(payload + off, rec_len, &rec)) return false;
    batch->records.push_back(std::move(rec));
    off += rec_len;
  }
  return off == len;
}

void ShipTransport::send(std::vector<char> frame) {
  ++stats_.sent;
  if (SDB_INJECT("replica.ship.drop")) {
    ++stats_.dropped;
    return;
  }
  const bool duplicate = SDB_INJECT("replica.ship.duplicate");
  if (SDB_INJECT("replica.ship.corrupt") && !frame.empty()) {
    // Flip one payload byte; the frame must now fail its checksum at the
    // applier. (Duplicates copy the corruption — both copies are rejected,
    // and the retransmit ships the range again intact.)
    frame[frame.size() / 2] = static_cast<char>(frame[frame.size() / 2] ^ 0x20);
    ++stats_.corrupted;
  }
  if (duplicate) {
    queue_.push_back(frame);
    ++stats_.duplicated;
  }
  queue_.push_back(std::move(frame));
  if (SDB_INJECT("replica.ship.reorder") && queue_.size() >= 2) {
    std::swap(queue_[queue_.size() - 1], queue_[queue_.size() - 2]);
    ++stats_.reordered;
  }
}

std::optional<std::vector<char>> ShipTransport::receive() {
  if (queue_.empty()) return std::nullopt;
  std::vector<char> frame = std::move(queue_.front());
  queue_.pop_front();
  ++stats_.delivered;
  return frame;
}

}  // namespace sdb::replica
