#include "replica/applier.hpp"

#include "fault/injection.hpp"
#include "replica/wal_ship.hpp"

namespace sdb::replica {

Applier::Applier(std::shared_ptr<serve::ModelRegistry> follower)
    : registry_(std::move(follower)) {
  SDB_CHECK(registry_ != nullptr, "applier needs a follower registry");
  SDB_CHECK(registry_->role() == serve::RegistryRole::kFollower,
            "applier target must be a follower");
}

bool Applier::offer(const std::vector<char>& frame) {
  WalBatch batch;
  if (!decode_batch(frame, &batch)) {
    ++stats_.corrupt_rejected;
    return false;
  }
  if (SDB_INJECT("replica.apply.stall")) {
    // Too busy to apply: drop the decoded batch on the floor. The relay
    // re-ships from our (unadvanced) cursor next pump.
    ++stats_.stalled;
    return false;
  }
  if (batch.term < term_) {
    ++stats_.fenced;
    return false;
  }
  term_ = batch.term;
  const serve::ModelRegistry::StreamCursor cur = registry_->replication_cursor();
  if (batch.generation != cur.generation || batch.start_seq > cur.next_seq) {
    // Wrong generation (we need the snapshot handshake) or a hole before
    // this batch (drop/reorder upstream). Either way: discard, let the
    // relay resynchronize from our cursor.
    ++stats_.gaps;
    return false;
  }
  const u64 end_seq = batch.start_seq + batch.records.size();
  if (end_seq <= cur.next_seq) {
    // Entirely already applied (duplicate or stale retransmit).
    stats_.duplicates_skipped += batch.records.size();
    return false;
  }
  const size_t skip = static_cast<size_t>(cur.next_seq - batch.start_seq);
  stats_.duplicates_skipped += skip;
  for (size_t i = skip; i < batch.records.size(); ++i) {
    registry_->apply_replicated(batch.records[i]);
  }
  stats_.records_applied += batch.records.size() - skip;
  ++stats_.batches_applied;
  return true;
}

void Applier::install_snapshot(u64 term, u64 generation,
                               const std::string& blob) {
  if (term < term_) {
    ++stats_.fenced;
    return;
  }
  term_ = term;
  registry_->install_replica_snapshot(blob, generation);
  ++stats_.snapshots_installed;
}

}  // namespace sdb::replica
