// Applier — the follower half of WAL shipping.
//
// Consumes frames off a ShipTransport and turns them into exact stream
// application on a RegistryRole::kFollower ModelRegistry. The channel may
// drop, duplicate, reorder, or corrupt frames (wal_ship.hpp), so the
// applier enforces the stream discipline that makes the follower's log a
// byte prefix of the primary's:
//
//   * checksum-reject corrupt frames (counted; retransmit re-covers);
//   * fence stale terms — a frame from term < adopted term is from a
//     deposed primary and is discarded (a frame from a NEWER term adopts
//     that term first: the new primary's stream continues the old one);
//   * gap-reject batches starting past the applied cursor (an earlier frame
//     was dropped or is still in flight behind a reordering — the relay's
//     next pump re-ships from the cursor, so gaps heal without nacks);
//   * skip the already-applied prefix of an overlapping batch (duplicates
//     and retransmits), then apply only the new suffix.
//
// The applied position is not applier state: it is read from the follower
// registry's own WAL cursor, so a follower restarted from disk resumes at
// exactly the right stream offset with a fresh Applier.
//
// Fault site `replica.apply.stall` models a follower too busy to apply: the
// frame is discarded as if dropped in transit — the same retransmit path
// covers it.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "serve/model_registry.hpp"

namespace sdb::replica {

class Applier {
 public:
  struct Stats {
    u64 batches_applied = 0;
    u64 records_applied = 0;
    u64 duplicates_skipped = 0;  ///< records already applied (dups/overlap)
    u64 gaps = 0;                ///< batches starting past the cursor
    u64 fenced = 0;              ///< stale-term batches rejected
    u64 corrupt_rejected = 0;    ///< checksum / framing failures
    u64 stalled = 0;             ///< replica.apply.stall refusals
    u64 snapshots_installed = 0;
  };

  explicit Applier(std::shared_ptr<serve::ModelRegistry> follower);

  /// Offer one received frame. Returns true when at least one new record
  /// was applied (progress), false otherwise (rejected or pure duplicate).
  bool offer(const std::vector<char>& frame);

  /// Snapshot handshake (relay detected our cursor predates its log):
  /// replace all follower state and reposition the stream at
  /// (`generation`, 0). Term-fenced like record batches.
  void install_snapshot(u64 term, u64 generation, const std::string& blob);

  /// The follower's applied stream position (from its own WAL).
  [[nodiscard]] serve::ModelRegistry::StreamCursor cursor() const {
    return registry_->replication_cursor();
  }
  /// Highest term this applier has accepted a primary from.
  [[nodiscard]] u64 term() const { return term_; }
  /// The follower's published epoch (how fresh its served model is).
  [[nodiscard]] u64 applied_epoch() const { return registry_->epoch(); }
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  std::shared_ptr<serve::ModelRegistry> registry_;
  u64 term_ = 0;
  Stats stats_;
};

}  // namespace sdb::replica
