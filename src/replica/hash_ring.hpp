// ConsistentHashRing — deterministic query/shard placement with virtual
// nodes.
//
// The sharded serving tier routes every point (inserts and classify
// queries alike) to exactly one shard. Requirements that rule out a plain
// `hash % shards`:
//
//   * deterministic ACROSS PROCESSES: the CLI, the bench harness, and every
//     replica must route a given point identically with no shared state —
//     so the hash is FNV-1a over the raw coordinate bytes, no seeding from
//     pointers, time, or std::hash (which is implementation-defined);
//   * minimal remap on membership change: adding or removing one shard of N
//     must move only ~1/N of the key space (classic consistent hashing);
//     a modulo would reshuffle nearly everything and invalidate every
//     shard's accumulated state;
//   * placement independent of insertion ORDER: the ring is a pure function
//     of the member set, so two routers that learned the members in
//     different orders still agree.
//
// Each node contributes `vnodes` points on the ring (hash of "id#k"); a key
// routes to the first vnode clockwise from its hash. More vnodes = smoother
// balance at O(vnodes · nodes · log) rebuild cost — rebuilds are rare
// (membership changes only) and the table is tiny, so this subsystem
// rebuilds from scratch for simplicity; lookups stay O(log(N·vnodes)).
//
// tests/test_hash_ring.cpp proves determinism, order-independence, balance,
// and the strictly-fewer-than-2/N remap bound.
#pragma once

#include <span>
#include <string>
#include <utility>
#include <vector>

#include "util/common.hpp"

namespace sdb::replica {

class ConsistentHashRing {
 public:
  explicit ConsistentHashRing(u32 vnodes = 64);

  /// Add a member (no-op if already present). O(members · vnodes) rebuild.
  void add_node(const std::string& id);
  /// Remove a member (no-op if absent).
  void remove_node(const std::string& id);

  /// The member owning `key`: first vnode clockwise from the key's position.
  /// Aborts when the ring is empty.
  [[nodiscard]] const std::string& node_for(u64 key) const;
  /// The first `n` DISTINCT members clockwise from the key — the replica
  /// placement list (fewer when the ring has fewer members).
  [[nodiscard]] std::vector<std::string> nodes_for(u64 key, size_t n) const;

  [[nodiscard]] size_t size() const { return nodes_.size(); }
  [[nodiscard]] const std::vector<std::string>& nodes() const {
    return nodes_;
  }

  /// --- the cross-process-stable hashes (FNV-1a + avalanche finalizer;
  /// never std::hash, which is implementation-defined) ---
  static u64 hash_bytes(const void* data, size_t size);
  static u64 hash_string(const std::string& s);
  /// Route a point by its raw coordinate bytes (bit-exact doubles).
  static u64 hash_point(std::span<const double> coords);

 private:
  void rebuild();

  u32 vnodes_;
  std::vector<std::string> nodes_;  ///< sorted unique member ids
  /// Sorted (ring position, index into nodes_). Ties (astronomically rare)
  /// break by node index, which maps to the sorted id order — still a pure
  /// function of the member set.
  std::vector<std::pair<u64, u32>> ring_;
};

}  // namespace sdb::replica
