#include "replica/relay.hpp"

#include <algorithm>

#include "replica/applier.hpp"
#include "replica/wal_ship.hpp"

namespace sdb::replica {

Relay::Relay(std::shared_ptr<serve::ModelRegistry> primary, u64 term,
             size_t batch_records, size_t pipeline_batches)
    : primary_(std::move(primary)),
      term_(term),
      batch_records_(batch_records),
      pipeline_batches_(pipeline_batches) {
  SDB_CHECK(primary_ != nullptr, "relay needs a primary registry");
  SDB_CHECK(batch_records_ > 0 && pipeline_batches_ > 0,
            "relay batch/pipeline sizes must be positive");
}

void Relay::pump(Applier& applier, ShipTransport& transport) {
  const serve::ModelRegistry::StreamCursor cur = applier.cursor();
  const serve::ShipChunk chunk = primary_->ship_from(
      cur.generation, cur.next_seq, batch_records_ * pipeline_batches_);
  if (chunk.need_snapshot) {
    applier.install_snapshot(term_, chunk.generation, chunk.snapshot_blob);
    ++snapshots_shipped_;
    return;
  }
  size_t off = 0;
  while (off < chunk.records.size()) {
    const size_t n = std::min(batch_records_, chunk.records.size() - off);
    WalBatch batch;
    batch.term = term_;
    batch.generation = chunk.generation;
    batch.start_seq = chunk.start_seq + off;
    batch.committed_epoch = chunk.committed_epoch;
    batch.records.assign(
        chunk.records.begin() + static_cast<ptrdiff_t>(off),
        chunk.records.begin() + static_cast<ptrdiff_t>(off + n));
    transport.send(encode_batch(batch));
    ++batches_shipped_;
    off += n;
  }
}

}  // namespace sdb::replica
