// WAL shipping wire format + the fault-injectable transport between a
// primary's relay and a follower's applier.
//
// A shipped batch is a run of consecutive stream records plus the
// coordinates that make it self-describing on an unreliable channel:
//
//   term            — the shipping primary's election term. An applier
//                     rejects batches from a stale term (fencing: a deposed
//                     primary's in-flight frames cannot rewrite a follower
//                     that already follows its successor).
//   generation      — WAL generation the records belong to (compaction
//                     coordinate; see serve/registry_wal.hpp).
//   start_seq       — stream seq of records.front() within that generation.
//   committed_epoch — the primary's published epoch at ship time
//                     (piggybacked watermark, observability only).
//
// Frame layout mirrors the on-disk WAL framing so one checksum discipline
// covers disk and wire:  u32 len | payload | u64 fnv1a(payload)  where the
// payload nests each record's own `encode_wal_payload` bytes. A frame that
// fails its checksum is rejected whole — exactly like a torn disk record.
//
// ShipTransport models the channel: an in-order queue of frames with four
// injectable failure modes (fault/injection.hpp sites):
//
//   replica.ship.drop       frame vanishes         (retransmit must cover)
//   replica.ship.duplicate  frame delivered twice  (applier must dedup)
//   replica.ship.reorder    frame swaps with its in-flight predecessor
//   replica.ship.corrupt    one payload byte flips (checksum must reject)
//
// The relay re-ships from the follower's applied cursor every pump, so a
// dropped frame is simply shipped again — progress needs no acks or nacks,
// only the cursor (tarantool-style relay/applier pairing).
#pragma once

#include <deque>
#include <optional>
#include <vector>

#include "serve/registry_wal.hpp"
#include "util/common.hpp"

namespace sdb::replica {

struct WalBatch {
  u64 term = 0;
  u64 generation = 0;
  u64 start_seq = 0;
  u64 committed_epoch = 0;
  std::vector<serve::WalRecord> records;
};

/// Encode a batch into one checksummed frame (layout above).
std::vector<char> encode_batch(const WalBatch& batch);
/// Decode a frame; false on any framing/checksum/payload mismatch (the
/// caller counts it and drops the frame — retransmit re-covers the range).
bool decode_batch(const std::vector<char>& frame, WalBatch* batch);

class ShipTransport {
 public:
  struct Stats {
    u64 sent = 0;       ///< frames offered by the relay
    u64 delivered = 0;  ///< frames handed to the applier
    u64 dropped = 0;
    u64 duplicated = 0;
    u64 reordered = 0;
    u64 corrupted = 0;
  };

  /// Enqueue a frame, subject to the injected failure modes.
  void send(std::vector<char> frame);
  /// Dequeue the next in-flight frame (nullopt when the channel is idle).
  std::optional<std::vector<char>> receive();

  [[nodiscard]] bool empty() const { return queue_.empty(); }
  [[nodiscard]] const Stats& stats() const { return stats_; }
  /// Drop all in-flight frames (failover: the old channel is abandoned).
  void clear() { queue_.clear(); }

 private:
  std::deque<std::vector<char>> queue_;
  Stats stats_;
};

}  // namespace sdb::replica
