// ReplicaSet — one shard's replication group: a primary ModelRegistry, N-1
// followers fed by WAL shipping, a quorum-ack commit rule, and a heartbeat
// failover monitor. This is the tentpole of the replicated serving tier.
//
// ## Topology
//
// Node 0 starts as primary (term 1). Every node keeps a stream log (its
// RegistryWal — durable when Options::dir is set, in-memory otherwise). The
// primary's relay ships log records to each follower over a per-follower
// ShipTransport; each follower's Applier enforces the stream discipline
// (applier.hpp). `pump()` runs one replication round; `tick()` advances the
// failure-detector clock. Both are driven by the host loop (bench, tests,
// CLI) — the subsystem owns no threads, which is what makes the chaos grid
// deterministic.
//
// ## The prefix property (why failover cannot diverge)
//
// A follower's log is forced to the primary's stream coordinates: snapshot
// install resets it to (generation, 0), and afterwards the applier appends
// EXACTLY the shipped records in seq order — followers never append
// anything of their own (even recovery republishes without logging, see
// ModelRegistry). Hence every live follower's log is a byte prefix of the
// true stream. Failover promotes the follower with the MOST stream —
// max (applied epoch, generation, next_seq) — so every other live
// follower's log is a prefix of the NEW primary's log too, and shipping
// simply resumes from their cursors. No Raft-style divergence repair is
// needed under the single-failure model (only the primary dies).
//
// ## Commit rule and the read contract
//
// A published epoch is *pending* until at least min(ack_replicas, live
// followers) followers have applied it; then it is *committed*. Reads
// aimed at the primary serve the newest COMMITTED model — never a
// pending one — so an epoch that dies with its primary was never served
// and can be silently reassigned by the successor. Reads aimed at a
// follower serve the follower's own applied model (safe: that replica
// holds the bytes; an epoch applied anywhere is, by the prefix property,
// content-identical everywhere it appears) — unless it lags the committed
// epoch by more than Options::staleness_bound, in which case the read
// redirects to the committed model and is counted. During a failover
// window reads keep being served from the retained committed model:
// availability for reads, unavailability for writes (insert/publish return
// nullopt until promotion).
//
// ## Failure model
//
// Channel faults (drop/duplicate/reorder/corrupt) and primary SIGKILL, via
// fault sites — `replica.primary.kill` is consulted on each heartbeat, so a
// seeded FaultPlan decides when the primary dies. One failure at a time;
// deposed primaries do not rejoin (their durable WAL can still be audited
// offline, which tests/test_replica_chaos.cpp does). Term fencing keeps a
// dead primary's in-flight frames from rewriting anyone after promotion.
#pragma once

#include <atomic>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "replica/applier.hpp"
#include "replica/relay.hpp"
#include "replica/wal_ship.hpp"
#include "serve/cluster_model.hpp"
#include "serve/model_registry.hpp"

namespace sdb::replica {

class ReplicaSet {
 public:
  struct Options {
    size_t replicas = 3;
    /// Max epochs a follower read may lag the committed epoch before the
    /// read redirects to the committed model.
    u64 staleness_bound = 4;
    /// Ticks without a primary heartbeat before a follower is promoted.
    u64 heartbeat_timeout = 3;
    /// Followers that must apply an epoch before it commits (clamped to
    /// the live follower count; 0 = commit on publish, primary-only).
    size_t ack_replicas = 1;
    size_t batch_records = 64;    ///< stream records per shipped frame
    size_t pipeline_batches = 2;  ///< frames in flight per pump per follower
    /// Durable node WALs under `<dir>/node_<i>` (empty = in-memory logs).
    std::string dir;
    /// Per-node registry settings (role/wal_dir/replicated are overridden).
    serve::ModelRegistry::Config registry;
  };

  /// One routed read. `epoch` is the epoch of the model that answered;
  /// `redirected` marks reads the preferred replica could not serve within
  /// the staleness contract (served from the committed model instead).
  struct ClassifyResult {
    ClusterId cluster = kNoise;
    u64 epoch = 0;
    bool redirected = false;
  };

  ReplicaSet(Options options, int dim);

  /// --- writes (routed to the primary; nullopt while failed over) ---
  [[nodiscard]] std::optional<PointId> insert(std::span<const double> coords);
  bool try_remove(PointId id);
  [[nodiscard]] std::optional<u64> publish();
  /// Compact the primary's log into a snapshot generation (lagging
  /// followers will catch up via the snapshot handshake).
  [[nodiscard]] std::optional<u64> compact();

  /// --- replication / failure-detection driver ---
  /// One replication round: ship to every live follower, drain and apply
  /// every channel, advance the commit watermark.
  void pump();
  /// One failure-detector beat: heartbeat the primary (or let the
  /// `replica.primary.kill` fault site kill it) and promote a follower once
  /// the heartbeat has been silent past the timeout.
  void tick();
  /// Simulate SIGKILL of the primary process: its in-memory registry is
  /// gone mid-stream, no goodbye. (Its durable WAL, if any, stays on disk.)
  void kill_primary();

  /// --- reads (lock-free; any thread, concurrent with the driver) ---
  [[nodiscard]] ClassifyResult classify(std::span<const double> point,
                                        size_t preferred_node) const;
  [[nodiscard]] u64 committed_epoch() const {
    return committed_epoch_.load(std::memory_order_acquire);
  }
  [[nodiscard]] std::shared_ptr<const serve::ClusterModel> committed_model()
      const {
    return committed_model_.load(std::memory_order_acquire);
  }

  /// --- observability / test surface ---
  [[nodiscard]] size_t replicas() const { return nodes_.size(); }
  [[nodiscard]] size_t primary_index() const {
    return primary_index_.load(std::memory_order_acquire);
  }
  [[nodiscard]] bool has_live_primary() const;
  [[nodiscard]] bool alive(size_t node) const;
  [[nodiscard]] u64 term() const;
  [[nodiscard]] u64 failovers() const {
    return failovers_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] u64 stale_redirects() const {
    return stale_redirects_.load(std::memory_order_relaxed);
  }
  /// The node's registry (null when the node is dead).
  [[nodiscard]] std::shared_ptr<serve::ModelRegistry> node_registry(
      size_t node) const;
  [[nodiscard]] Applier::Stats applier_stats(size_t node) const;
  [[nodiscard]] ShipTransport::Stats transport_stats(size_t node) const;
  [[nodiscard]] std::string node_dir(size_t node) const;

 private:
  struct Node {
    std::atomic<std::shared_ptr<serve::ModelRegistry>> registry{nullptr};
    std::unique_ptr<Applier> applier;  ///< null on the primary
    ShipTransport transport;           ///< primary -> this follower
    std::atomic<bool> alive{true};
  };
  struct PendingEpoch {
    u64 epoch = 0;
    std::shared_ptr<const serve::ClusterModel> model;
  };

  void note_publishes_locked();
  void advance_commits_locked();
  void kill_primary_locked();
  void maybe_promote_locked();
  [[nodiscard]] std::shared_ptr<serve::ModelRegistry> live_primary_locked()
      const;

  Options options_;
  int dim_;
  mutable std::mutex mu_;  // guards the driver/write side + pending_
  std::vector<std::unique_ptr<Node>> nodes_;
  std::unique_ptr<Relay> relay_;  ///< null while no live primary
  u64 term_ = 1;
  u64 now_ = 0;
  u64 last_primary_heartbeat_ = 0;
  /// Published-but-not-yet-quorum-acked epochs, oldest first.
  std::deque<PendingEpoch> pending_;
  u64 last_noted_epoch_ = 0;

  std::atomic<size_t> primary_index_{0};
  std::atomic<u64> committed_epoch_{0};
  std::atomic<std::shared_ptr<const serve::ClusterModel>> committed_model_;
  std::atomic<u64> failovers_{0};
  mutable std::atomic<u64> stale_redirects_{0};
};

}  // namespace sdb::replica
