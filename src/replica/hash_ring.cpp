#include "replica/hash_ring.hpp"

#include <algorithm>

namespace sdb::replica {

namespace {
constexpr u64 kFnvOffset = 1469598103934665603ull;
constexpr u64 kFnvPrime = 1099511628211ull;

/// 64-bit avalanche finalizer (murmur3 fmix64). Raw FNV-1a mixes each input
/// byte into the LOW bits well but leaves the high bits weak for short
/// inputs — and ring placement is decided by u64 ORDER, i.e. the high bits.
/// Without this the vnode positions cluster badly enough to skew node
/// shares by 2x+.
constexpr u64 avalanche(u64 h) {
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdull;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ull;
  h ^= h >> 33;
  return h;
}
}  // namespace

u64 ConsistentHashRing::hash_bytes(const void* data, size_t size) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  u64 h = kFnvOffset;
  for (size_t i = 0; i < size; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return avalanche(h);
}

u64 ConsistentHashRing::hash_string(const std::string& s) {
  return hash_bytes(s.data(), s.size());
}

u64 ConsistentHashRing::hash_point(std::span<const double> coords) {
  return hash_bytes(coords.data(), coords.size_bytes());
}

ConsistentHashRing::ConsistentHashRing(u32 vnodes) : vnodes_(vnodes) {
  SDB_CHECK(vnodes > 0, "hash ring needs at least one vnode per member");
}

void ConsistentHashRing::add_node(const std::string& id) {
  const auto it = std::lower_bound(nodes_.begin(), nodes_.end(), id);
  if (it != nodes_.end() && *it == id) return;
  nodes_.insert(it, id);
  rebuild();
}

void ConsistentHashRing::remove_node(const std::string& id) {
  const auto it = std::lower_bound(nodes_.begin(), nodes_.end(), id);
  if (it == nodes_.end() || *it != id) return;
  nodes_.erase(it);
  rebuild();
}

void ConsistentHashRing::rebuild() {
  ring_.clear();
  ring_.reserve(nodes_.size() * vnodes_);
  for (u32 n = 0; n < static_cast<u32>(nodes_.size()); ++n) {
    for (u32 k = 0; k < vnodes_; ++k) {
      const std::string vnode = nodes_[n] + "#" + std::to_string(k);
      ring_.emplace_back(hash_string(vnode), n);
    }
  }
  std::sort(ring_.begin(), ring_.end());
}

const std::string& ConsistentHashRing::node_for(u64 key) const {
  SDB_CHECK(!ring_.empty(), "node_for on an empty hash ring");
  auto it = std::upper_bound(ring_.begin(), ring_.end(),
                             std::make_pair(key, ~u32{0}));
  if (it == ring_.end()) it = ring_.begin();  // clockwise wrap
  return nodes_[it->second];
}

std::vector<std::string> ConsistentHashRing::nodes_for(u64 key,
                                                       size_t n) const {
  SDB_CHECK(!ring_.empty(), "nodes_for on an empty hash ring");
  std::vector<std::string> out;
  const size_t want = std::min(n, nodes_.size());
  size_t pos = static_cast<size_t>(
      std::upper_bound(ring_.begin(), ring_.end(),
                       std::make_pair(key, ~u32{0})) -
      ring_.begin());
  for (size_t walked = 0; out.size() < want && walked < ring_.size();
       ++walked, ++pos) {
    const std::string& id = nodes_[ring_[pos % ring_.size()].second];
    if (std::find(out.begin(), out.end(), id) == out.end()) out.push_back(id);
  }
  return out;
}

}  // namespace sdb::replica
