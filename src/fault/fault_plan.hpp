// FaultPlan — deterministic, seeded fault-injection schedules.
//
// One plan describes, for each named injection site, *when* that site fires:
//   * `p`      — per-hit probability, drawn from a site-private RNG stream
//                derived from (plan seed, site name) so sites never perturb
//                each other's sequences;
//   * `every`  — fire deterministically on every Nth hit (1 = every hit);
//   * `after`  — the site is dormant for its first `after` hits;
//   * `budget` — maximum number of fires (unlimited when omitted) — the
//                knob that keeps throwing sites below a pipeline's bounded
//                retry limit.
//
// Every decision is recorded in an ordered fault log; `log_digest()` hashes
// the fired (site, hit) sequence so a test can assert that replaying the
// same spec string reproduces the byte-identical fault sequence. (Ordering
// across threads is the caller's concern: chaos tests run the host pool with
// one thread, which makes the whole log deterministic.)
//
// The plan serializes to/from a one-line spec string for repro in bug
// reports and ctest logs:
//
//   seed=42;dfs.read.fail:p=0.1,budget=3;spark.task.fail:every=5,after=2
//
// Installation is process-wide: ScopedFaultPlan installs a plan for the
// duration of a scope (tests), or FaultPlan::install for manual control.
// Sites not mentioned in the installed plan never fire.
#pragma once

#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "fault/injection.hpp"
#include "util/common.hpp"
#include "util/rng.hpp"

namespace sdb::fault {

inline constexpr u64 kUnlimitedBudget = ~0ull;

/// Per-site schedule. Probability and every/after compose: the site must be
/// past `after`, pass the every-Nth gate (if set), pass the probability draw
/// (if p < 1), and have budget left.
struct SiteSpec {
  std::string site;
  double probability = 1.0;        ///< chance per eligible hit
  u64 every = 0;                   ///< fire on every Nth eligible hit; 0 = off
  u64 after = 0;                   ///< skip the first `after` hits entirely
  u64 budget = kUnlimitedBudget;   ///< max fires
};

/// One fired fault, in program order.
struct FaultEvent {
  std::string site;
  u64 hit = 0;   ///< 1-based hit index at the site when it fired
  u64 fire = 0;  ///< 1-based fire index at the site
};

class FaultPlan {
 public:
  explicit FaultPlan(u64 seed = 0);

  /// Movable (fresh mutex; the source must not be installed or in use).
  FaultPlan(FaultPlan&& other) noexcept;
  FaultPlan& operator=(FaultPlan&&) = delete;
  FaultPlan(const FaultPlan&) = delete;
  FaultPlan& operator=(const FaultPlan&) = delete;

  /// Parse a one-line spec: `seed=N;site:key=value,key=value;...`.
  /// Keys: p (probability), every, after, budget. A bare `site` (no keys)
  /// means p=1 (fire on every hit). Aborts on malformed specs.
  static FaultPlan parse(const std::string& spec);

  /// Serialize back to the one-line spec grammar (parse(spec()).spec() is a
  /// fixed point).
  [[nodiscard]] std::string spec() const;

  void add_site(SiteSpec spec);
  [[nodiscard]] u64 seed() const { return seed_; }

  /// The injection decision for one hit of `site`. Thread-safe; counts the
  /// hit, consumes the site's RNG stream, appends to the log when it fires.
  bool should_fire(std::string_view site);

  // --- observation (thread-safe) ---
  [[nodiscard]] u64 hits() const;                       ///< all sites
  [[nodiscard]] u64 fires() const;                      ///< all sites
  [[nodiscard]] u64 hits(std::string_view site) const;
  [[nodiscard]] u64 fires(std::string_view site) const;
  [[nodiscard]] std::vector<FaultEvent> log() const;
  /// FNV-1a over the ordered fired (site, hit) sequence; equal digests ==
  /// byte-identical fault sequences.
  [[nodiscard]] u64 log_digest() const;

  // --- process-wide installation ---
  /// Install `plan` as the process-wide active plan (nullptr uninstalls).
  /// The caller keeps ownership and must outlive the installation.
  static void install(FaultPlan* plan);
  [[nodiscard]] static FaultPlan* active();

 private:
  struct SiteState {
    SiteSpec spec;
    Rng rng;  ///< private stream: Rng(derive_seed(plan seed, site name))
    u64 hits = 0;
    u64 eligible_hits = 0;
    u64 fires = 0;
    explicit SiteState(SiteSpec s, u64 plan_seed)
        : spec(std::move(s)), rng(derive_seed(plan_seed, spec.site)) {}
  };

  u64 seed_;
  mutable std::mutex mu_;
  std::map<std::string, SiteState, std::less<>> sites_;
  std::vector<FaultEvent> log_;
  u64 total_hits_ = 0;  ///< includes hits at sites the plan does not name
};

/// RAII process-wide installation for tests:
///   ScopedFaultPlan chaos("seed=7;dfs.read.fail:p=0.2,budget=3");
///   ... run pipeline; faults fire ...
///   chaos.plan().log_digest();
/// Nesting replaces the active plan and restores the previous one on exit.
class ScopedFaultPlan {
 public:
  explicit ScopedFaultPlan(FaultPlan plan)
      : plan_(std::move(plan)), previous_(FaultPlan::active()) {
    FaultPlan::install(&plan_);
  }
  explicit ScopedFaultPlan(const std::string& spec)
      : ScopedFaultPlan(FaultPlan::parse(spec)) {}
  ~ScopedFaultPlan() { FaultPlan::install(previous_); }

  ScopedFaultPlan(const ScopedFaultPlan&) = delete;
  ScopedFaultPlan& operator=(const ScopedFaultPlan&) = delete;

  [[nodiscard]] FaultPlan& plan() { return plan_; }

 private:
  FaultPlan plan_;
  FaultPlan* previous_;
};

}  // namespace sdb::fault
