// SDB_INJECT — the hook macro every fault-injection site compiles through.
//
// A site is a named point in production code where a fault *may* fire:
//
//   if (SDB_INJECT("dfs.read.fail")) throw DfsTransientError(...);
//
// The macro evaluates to a bool: "should the fault fire here, now?". The
// decision belongs to the process-wide FaultPlan (fault/fault_plan.hpp);
// the *effect* — throw, delay, drop an update, write a torn block — belongs
// to the call site, so each layer expresses its own failure modes.
//
// Cost contract:
//   * SDB_FAULT_INJECTION off  -> the macro is the literal constant `false`;
//     the compiler dead-codes the whole fault arm. Zero overhead, proven by
//     bench/bench_chaos_overhead.cpp.
//   * on, no plan installed    -> one relaxed atomic load + null test.
//   * on, plan installed       -> a mutex-guarded site lookup; only paid in
//     chaos runs.
//
// This header is intentionally tiny (no <string>, no plan internals) so hot
// headers can include it without dragging in the framework.
#pragma once

#include <string_view>

namespace sdb::fault {

/// Fast-path dispatcher behind SDB_INJECT. Returns true when the active
/// FaultPlan schedules a fault for `site` on this hit. False when no plan is
/// installed.
bool maybe_inject(std::string_view site);

/// Exception used by sites whose failure mode is "the operation failed
/// transiently" (task throw, lost accumulator update, transient read error).
/// Recovery layers (task retry loops, util/retry.hpp) treat it as retriable.
class InjectedFault {
 public:
  explicit InjectedFault(std::string_view site) : site_(site) {}
  [[nodiscard]] std::string_view site() const { return site_; }
  [[nodiscard]] const char* what() const { return "sdb::fault::InjectedFault"; }

 private:
  std::string_view site_;  // sites are string literals; lifetime is static
};

}  // namespace sdb::fault

#ifdef SDB_FAULT_INJECTION
#define SDB_INJECT(site) (::sdb::fault::maybe_inject(site))
#else
#define SDB_INJECT(site) (false)
#endif
