// SDB_INJECT — the hook macro every fault-injection site compiles through.
//
// A site is a named point in production code where a fault *may* fire:
//
//   if (SDB_INJECT("dfs.read.fail")) throw DfsTransientError(...);
//
// The macro evaluates to a bool: "should the fault fire here, now?". The
// decision belongs to the process-wide FaultPlan (fault/fault_plan.hpp);
// the *effect* — throw, delay, drop an update, write a torn block — belongs
// to the call site, so each layer expresses its own failure modes.
//
// Cost contract:
//   * SDB_FAULT_INJECTION off  -> the macro is the literal constant `false`;
//     the compiler dead-codes the whole fault arm. Zero overhead, proven by
//     bench/bench_chaos_overhead.cpp.
//   * on, no plan installed    -> one relaxed atomic load + null test.
//   * on, plan installed       -> a mutex-guarded site lookup; only paid in
//     chaos runs.
//
// This header is intentionally tiny (no <string>, no plan internals) so hot
// headers can include it without dragging in the framework.
#pragma once

#include <string_view>

namespace sdb::fault {

/// Fast-path dispatcher behind SDB_INJECT. Returns true when the active
/// FaultPlan schedules a fault for `site` on this hit. False when no plan is
/// installed.
bool maybe_inject(std::string_view site);

/// --- crash points (process-death injection) ---
///
/// A crash point marks a byte-exact place where a process may die: between
/// the torn half of a write and its completion, between a tmp file and its
/// rename, between a rename and its manifest publish. When the active plan
/// schedules the site, the crash handler runs — by default raise(SIGKILL),
/// so the process dies exactly as `kill -9` would, leaving whatever bytes
/// already reached the filesystem. The kill-recover harness
/// (tests/test_crash_recovery.cpp) fork()s a child, arms a plan naming
/// crash sites, and asserts the restarted pipeline recovers.
///
/// Unit tests that want to observe the torn state in-process install a
/// handler that throws instead (set_crash_handler); production code treats a
/// returning/throwing crash point as "the process died here" and must not
/// attempt cleanup past it.
using CrashHandler = void (*)(std::string_view site);

/// Install a crash handler (nullptr restores the default SIGKILL handler).
/// Returns the previous handler so tests can restore it.
CrashHandler set_crash_handler(CrashHandler handler);

/// Fire-check for a crash point: when the active plan schedules `site`,
/// invoke the crash handler (which normally never returns).
void crash_point(std::string_view site);

/// Invoke the crash handler unconditionally. For sites that must stage the
/// torn state first: decide with SDB_INJECT, write the partial bytes, then
/// call trigger_crash. Aborts if the handler returns — code past a crash is
/// unreachable by contract.
void trigger_crash(std::string_view site);

/// Exception used by sites whose failure mode is "the operation failed
/// transiently" (task throw, lost accumulator update, transient read error).
/// Recovery layers (task retry loops, util/retry.hpp) treat it as retriable.
class InjectedFault {
 public:
  explicit InjectedFault(std::string_view site) : site_(site) {}
  [[nodiscard]] std::string_view site() const { return site_; }
  [[nodiscard]] const char* what() const { return "sdb::fault::InjectedFault"; }

 private:
  std::string_view site_;  // sites are string literals; lifetime is static
};

}  // namespace sdb::fault

#ifdef SDB_FAULT_INJECTION
#define SDB_INJECT(site) (::sdb::fault::maybe_inject(site))
#define SDB_CRASH_POINT(site) (::sdb::fault::crash_point(site))
#else
#define SDB_INJECT(site) (false)
#define SDB_CRASH_POINT(site) ((void)0)
#endif
