#include "fault/fault_plan.hpp"

#include <csignal>

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace sdb::fault {

namespace {

/// The process-wide active plan. Relaxed loads keep the dormant-hook fast
/// path to a single uncontended atomic read.
std::atomic<FaultPlan*> g_active{nullptr};

u64 fnv1a_append(u64 h, const void* data, size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < size; ++i) {
    h ^= bytes[i];
    h *= 1099511628211ull;
  }
  return h;
}

[[noreturn]] void bad_spec(const std::string& spec, const std::string& why) {
  SDB_CHECK(false, "malformed FaultPlan spec '" + spec + "': " + why);
  std::abort();  // unreachable; SDB_CHECK(false) aborts
}

double parse_f64(const std::string& spec, const std::string& text) {
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end == nullptr || *end != '\0' || text.empty()) {
    bad_spec(spec, "bad number '" + text + "'");
  }
  return v;
}

u64 parse_u64(const std::string& spec, const std::string& text) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || text.empty()) {
    bad_spec(spec, "bad integer '" + text + "'");
  }
  return v;
}

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (start <= text.size()) {
    const size_t end = text.find(sep, start);
    if (end == std::string::npos) {
      parts.push_back(text.substr(start));
      break;
    }
    parts.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  return parts;
}

/// Print a probability with enough digits to round-trip through parse().
std::string format_probability(double p) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", p);
  return buf;
}

}  // namespace

bool maybe_inject(std::string_view site) {
  FaultPlan* plan = g_active.load(std::memory_order_relaxed);
  if (plan == nullptr) return false;
  return plan->should_fire(site);
}

namespace {

/// Default crash semantics: the process dies the way `kill -9` kills it —
/// no stack unwinding, no atexit, no buffered-stdio flush. Whatever bytes
/// the kernel already has are all a restarted process will ever see.
[[noreturn]] void sigkill_handler(std::string_view /*site*/) {
  ::raise(SIGKILL);
  std::_Exit(137);  // unreachable unless SIGKILL is somehow not delivered
}

std::atomic<CrashHandler> g_crash_handler{&sigkill_handler};

}  // namespace

CrashHandler set_crash_handler(CrashHandler handler) {
  if (handler == nullptr) handler = &sigkill_handler;
  return g_crash_handler.exchange(handler, std::memory_order_acq_rel);
}

void trigger_crash(std::string_view site) {
  g_crash_handler.load(std::memory_order_acquire)(site);
  SDB_CHECK(false, "crash handler returned for site " + std::string(site));
}

void crash_point(std::string_view site) {
  if (maybe_inject(site)) trigger_crash(site);
}

FaultPlan::FaultPlan(u64 seed) : seed_(seed) {}

FaultPlan::FaultPlan(FaultPlan&& other) noexcept : seed_(other.seed_) {
  const std::scoped_lock lock(other.mu_);
  sites_ = std::move(other.sites_);
  log_ = std::move(other.log_);
  total_hits_ = other.total_hits_;
}

FaultPlan FaultPlan::parse(const std::string& spec) {
  std::vector<std::string> clauses = split(spec, ';');
  SDB_CHECK(!clauses.empty(), "empty FaultPlan spec");

  // First clause must be the seed.
  u64 seed = 0;
  bool have_seed = false;
  std::vector<SiteSpec> sites;
  for (const std::string& clause : clauses) {
    if (clause.empty()) continue;
    if (clause.rfind("seed=", 0) == 0) {
      if (have_seed) bad_spec(spec, "duplicate seed clause");
      seed = parse_u64(spec, clause.substr(5));
      have_seed = true;
      continue;
    }
    const size_t colon = clause.find(':');
    SiteSpec site;
    site.site = clause.substr(0, colon);
    if (site.site.empty()) bad_spec(spec, "empty site name");
    if (colon != std::string::npos) {
      for (const std::string& kv : split(clause.substr(colon + 1), ',')) {
        const size_t eq = kv.find('=');
        if (eq == std::string::npos) bad_spec(spec, "missing '=' in '" + kv + "'");
        const std::string key = kv.substr(0, eq);
        const std::string value = kv.substr(eq + 1);
        if (key == "p") {
          site.probability = parse_f64(spec, value);
          if (site.probability < 0.0 || site.probability > 1.0) {
            bad_spec(spec, "probability out of [0,1]: " + value);
          }
        } else if (key == "every") {
          site.every = parse_u64(spec, value);
        } else if (key == "after") {
          site.after = parse_u64(spec, value);
        } else if (key == "budget") {
          site.budget = parse_u64(spec, value);
        } else {
          bad_spec(spec, "unknown key '" + key + "'");
        }
      }
    }
    sites.push_back(std::move(site));
  }
  if (!have_seed) bad_spec(spec, "missing seed= clause");

  FaultPlan plan(seed);
  for (SiteSpec& site : sites) plan.add_site(std::move(site));
  return plan;
}

std::string FaultPlan::spec() const {
  const std::scoped_lock lock(mu_);
  std::string out = "seed=" + std::to_string(seed_);
  for (const auto& [name, state] : sites_) {
    out += ";" + name;
    std::string keys;
    const SiteSpec& s = state.spec;
    if (s.probability != 1.0) keys += ",p=" + format_probability(s.probability);
    if (s.every != 0) keys += ",every=" + std::to_string(s.every);
    if (s.after != 0) keys += ",after=" + std::to_string(s.after);
    if (s.budget != kUnlimitedBudget) keys += ",budget=" + std::to_string(s.budget);
    if (!keys.empty()) out += ":" + keys.substr(1);
  }
  return out;
}

void FaultPlan::add_site(SiteSpec spec) {
  const std::scoped_lock lock(mu_);
  std::string name = spec.site;
  SDB_CHECK(!sites_.contains(name), "duplicate site: " + name);
  sites_.emplace(std::move(name), SiteState(std::move(spec), seed_));
}

bool FaultPlan::should_fire(std::string_view site) {
  const std::scoped_lock lock(mu_);
  ++total_hits_;
  const auto it = sites_.find(site);
  if (it == sites_.end()) return false;  // unnamed sites never fire
  SiteState& state = it->second;
  ++state.hits;
  if (state.hits <= state.spec.after) return false;
  if (state.fires >= state.spec.budget) return false;
  ++state.eligible_hits;
  if (state.spec.every != 0 &&
      state.eligible_hits % state.spec.every != 0) {
    return false;
  }
  if (state.spec.probability < 1.0 &&
      !state.rng.chance(state.spec.probability)) {
    return false;
  }
  ++state.fires;
  log_.push_back(FaultEvent{it->first, state.hits, state.fires});
  return true;
}

u64 FaultPlan::hits() const {
  const std::scoped_lock lock(mu_);
  return total_hits_;
}

u64 FaultPlan::fires() const {
  const std::scoped_lock lock(mu_);
  return log_.size();
}

u64 FaultPlan::hits(std::string_view site) const {
  const std::scoped_lock lock(mu_);
  const auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.hits;
}

u64 FaultPlan::fires(std::string_view site) const {
  const std::scoped_lock lock(mu_);
  const auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.fires;
}

std::vector<FaultEvent> FaultPlan::log() const {
  const std::scoped_lock lock(mu_);
  return log_;
}

u64 FaultPlan::log_digest() const {
  const std::scoped_lock lock(mu_);
  u64 h = 1469598103934665603ull;
  for (const FaultEvent& e : log_) {
    h = fnv1a_append(h, e.site.data(), e.site.size());
    h = fnv1a_append(h, &e.hit, sizeof e.hit);
  }
  return h;
}

void FaultPlan::install(FaultPlan* plan) {
  g_active.store(plan, std::memory_order_release);
}

FaultPlan* FaultPlan::active() {
  return g_active.load(std::memory_order_acquire);
}

}  // namespace sdb::fault
