# Empty compiler generated dependencies file for sdb_spatial.
# This may be replaced when dependencies are built.
