
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_mr_engine.cpp" "tests/CMakeFiles/test_mr_engine.dir/test_mr_engine.cpp.o" "gcc" "tests/CMakeFiles/test_mr_engine.dir/test_mr_engine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/sdb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/serve/CMakeFiles/sdb_serve.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/sdb_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/dfs/CMakeFiles/sdb_dfs.dir/DependInfo.cmake"
  "/root/repo/build/src/minispark/CMakeFiles/sdb_minispark.dir/DependInfo.cmake"
  "/root/repo/build/src/mapreduce/CMakeFiles/sdb_mapreduce.dir/DependInfo.cmake"
  "/root/repo/build/src/spatial/CMakeFiles/sdb_spatial.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sdb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
