// Geo hotspots: the paper's full pipeline end to end, on a synthetic
// city-incident workload.
//
// Incident reports (2-D "GPS" points: dense hotspots + background noise) are
// written to the MiniDfs as a text file, exactly as the paper's HDFS inputs;
// the driver reads and parses them, picks eps with the original DBSCAN
// paper's k-dist heuristic (sorted distance to the 4th nearest neighbor),
// then runs the Spark-style pipeline and prints the hotspots.
//
//   ./geo_hotspots [--incidents 3000] [--hotspots 6] [--partitions 8]
#include <algorithm>
#include <cstdio>
#include <filesystem>

#include "core/spark_dbscan.hpp"
#include "core/quality.hpp"
#include "geom/distance.hpp"
#include "spatial/kd_tree.hpp"
#include "synth/generators.hpp"
#include "synth/io.hpp"
#include "util/flags.hpp"

using namespace sdb;

namespace {

/// The 4-dist heuristic from Ester et al.: eps = the knee of the sorted
/// k-distance curve. We use the simple robust stand-in: the 90th percentile
/// of 4-NN distances (noise inflates the top decile).
double estimate_eps(const PointSet& points, size_t k) {
  const KdTree tree(points);
  std::vector<double> kdist;
  kdist.reserve(points.size());
  for (PointId i = 0; i < static_cast<PointId>(points.size()); ++i) {
    const auto nn = tree.knn(points[i], k + 1);  // +1: self
    kdist.push_back(sdb::distance(points[i], points[nn.back()]));
  }
  std::sort(kdist.begin(), kdist.end());
  return kdist[kdist.size() * 9 / 10];
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  flags.add_i64("incidents", 3000, "number of incident reports");
  flags.add_i64("hotspots", 6, "number of true hotspots in the data");
  flags.add_i64("partitions", 8, "executors / partitions");
  flags.add_i64("minpts", 5, "DBSCAN minpts");
  flags.add_i64("seed", 11, "data seed");
  flags.parse(argc, argv);

  // 1. Synthesize the incident log: hotspots + 10% diffuse background.
  Rng rng(static_cast<u64>(flags.i64_flag("seed")));
  const i64 n = flags.i64_flag("incidents");
  std::vector<i32> truth;
  const PointSet incidents = synth::blobs_2d(
      n - n / 10, static_cast<int>(flags.i64_flag("hotspots")), 0.4, n / 10,
      rng, &truth);

  // 2. Ship it into the DFS as a text file (the paper's HDFS input path).
  namespace fs = std::filesystem;
  const std::string root = (fs::temp_directory_path() / "sdb_geo").string();
  fs::remove_all(root);
  dfs::MiniDfs dfs(root, 1 << 14);
  dfs.write("/incidents.txt", synth::to_text(incidents));
  std::printf("wrote %zu incidents to DFS (%zu blocks of %llu bytes)\n",
              incidents.size(), dfs.stat("/incidents.txt").blocks.size(),
              static_cast<unsigned long long>(dfs.block_size()));

  // 3. Choose eps from the data.
  const double eps = estimate_eps(incidents, 4);
  std::printf("estimated eps via 4-dist heuristic: %.3f\n", eps);

  // 4. Run the full pipeline from the DFS.
  minispark::ClusterConfig cluster;
  cluster.executors = static_cast<u32>(flags.i64_flag("partitions"));
  minispark::SparkContext ctx(cluster);
  dbscan::SparkDbscanConfig config;
  config.params = {eps, flags.i64_flag("minpts")};
  config.partitions = cluster.executors;
  dbscan::SparkDbscan dbscan(ctx, config);
  const auto report = dbscan.run_from_dfs(dfs, "/incidents.txt");

  // 5. Print the hotspots, largest first, with centroids.
  const auto sizes = report.clustering.cluster_sizes();
  std::vector<size_t> order(sizes.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return sizes[a] > sizes[b]; });
  std::printf("\nfound %llu hotspots (true: %lld), %llu unclustered reports\n",
              static_cast<unsigned long long>(report.clustering.num_clusters),
              static_cast<long long>(flags.i64_flag("hotspots")),
              static_cast<unsigned long long>(report.clustering.noise_count()));
  for (size_t rank = 0; rank < std::min<size_t>(order.size(), 10); ++rank) {
    const auto cluster_id = static_cast<ClusterId>(order[rank]);
    double cx = 0.0;
    double cy = 0.0;
    u64 count = 0;
    for (PointId i = 0; i < static_cast<PointId>(incidents.size()); ++i) {
      if (report.clustering.labels[static_cast<size_t>(i)] == cluster_id) {
        cx += incidents[i][0];
        cy += incidents[i][1];
        ++count;
      }
    }
    std::printf("  hotspot %zu: %llu reports around (%.2f, %.2f)\n", rank + 1,
                static_cast<unsigned long long>(count), cx / count, cy / count);
  }
  std::printf("\npipeline: read %.4fs | tree %.4fs | executors %.4fs | "
              "merge %.4fs (simulated)\n",
              report.sim_read_s, report.sim_tree_s, report.sim_executor_s,
              report.sim_merge_s);
  fs::remove_all(root);
  return 0;
}
