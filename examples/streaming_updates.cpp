// Streaming updates: maintain a DBSCAN clustering while points arrive one
// at a time — the incremental-DBSCAN extension (cf. the MR-IDBSCAN line of
// work the paper cites).
//
// A stream of 2-D events arrives in bursts; after each burst the current
// cluster picture is reported. The run ends with a full batch recluster to
// verify the maintained state matches from-scratch DBSCAN.
//
// A sliding window keeps the last --window bursts: older events are removed
// (incremental deletion), so clusters fade as their hotspots go quiet.
//
//   ./streaming_updates [--bursts 8] [--burst_size 250] [--eps 0.5]
//                       [--window 6]
#include <cstdio>

#include "core/dbscan_seq.hpp"
#include "core/incremental.hpp"
#include "core/quality.hpp"
#include "spatial/kd_tree.hpp"
#include "synth/generators.hpp"
#include "util/flags.hpp"
#include "util/stopwatch.hpp"

using namespace sdb;

int main(int argc, char** argv) {
  Flags flags;
  flags.add_i64("bursts", 8, "number of arrival bursts");
  flags.add_i64("burst_size", 250, "events per burst");
  flags.add_f64("eps", 0.5, "DBSCAN eps");
  flags.add_i64("minpts", 5, "DBSCAN minpts");
  flags.add_i64("seed", 23, "stream seed");
  flags.add_i64("window", 6, "bursts kept before old events expire");
  flags.parse(argc, argv);

  const dbscan::DbscanParams params{flags.f64("eps"), flags.i64_flag("minpts")};
  dbscan::IncrementalDbscan::Config config;
  config.params = params;
  config.rebuild_threshold = 128;
  dbscan::IncrementalDbscan stream(config, 2);

  // Event source: drifting hotspots — each burst adds density around a few
  // moving centers plus background noise, so clusters grow and merge live.
  Rng rng(static_cast<u64>(flags.i64_flag("seed")));
  std::vector<std::array<double, 2>> centers = {
      {2.0, 2.0}, {8.0, 3.0}, {5.0, 8.0}};

  std::vector<std::vector<PointId>> burst_ids;  // for window expiry
  std::printf("burst | active | clusters | noise | merges | rebuilds | ms/insert\n");
  for (i64 burst = 0; burst < flags.i64_flag("bursts"); ++burst) {
    Stopwatch sw;
    burst_ids.emplace_back();
    for (i64 i = 0; i < flags.i64_flag("burst_size"); ++i) {
      double p[2];
      if (rng.chance(0.12)) {
        p[0] = rng.uniform(0.0, 10.0);  // background noise
        p[1] = rng.uniform(0.0, 10.0);
      } else {
        const auto& c = centers[rng.uniform_index(centers.size())];
        p[0] = rng.normal(c[0], 0.35);
        p[1] = rng.normal(c[1], 0.35);
      }
      burst_ids.back().push_back(stream.insert(p));
    }
    // Sliding window: expire the oldest burst.
    if (static_cast<i64>(burst_ids.size()) > flags.i64_flag("window")) {
      for (const PointId id : burst_ids.front()) {
        if (!stream.try_remove(id)) std::printf("stale id %lld\n",
                                                static_cast<long long>(id));
      }
      burst_ids.erase(burst_ids.begin());
    }
    // Hotspots drift between bursts; cluster 0 drifts toward cluster 2 so a
    // live merge happens mid-stream.
    centers[0][0] += 0.35;
    centers[0][1] += 0.7;
    const auto snapshot = stream.clustering();
    std::printf("%5lld | %6zu | %8llu | %5llu | %6llu | %8llu | %.3f\n",
                static_cast<long long>(burst + 1), stream.active_size(),
                static_cast<unsigned long long>(snapshot.num_clusters),
                static_cast<unsigned long long>(snapshot.noise_count()),
                static_cast<unsigned long long>(stream.merges()),
                static_cast<unsigned long long>(stream.rebuilds()),
                sw.millis() / static_cast<double>(flags.i64_flag("burst_size")));
  }

  // Final verification: batch DBSCAN over the SURVIVING (non-expired)
  // points must structurally match the maintained state.
  PointSet survivors(2);
  std::vector<PointId> survivor_ids;
  for (PointId i = 0; i < static_cast<PointId>(stream.size()); ++i) {
    if (!stream.is_removed(i)) {
      survivors.add(stream.coords_of(i));
      survivor_ids.push_back(i);
    }
  }
  const KdTree tree(survivors);
  const auto batch = dbscan::dbscan_sequential(survivors, tree, params);
  dbscan::Clustering mine;
  const auto full = stream.clustering();
  for (const PointId id : survivor_ids) {
    mine.labels.push_back(full.labels[static_cast<size_t>(id)]);
  }
  mine.num_clusters = full.num_clusters;
  mine.normalize();
  const auto eq = dbscan::check_equivalence(survivors, tree, params,
                                            batch.core_points,
                                            batch.clustering, mine);
  std::printf("\nbatch recluster check over %zu active points: %s "
              "(clusters %llu vs %llu)\n",
              survivors.size(), eq.equivalent ? "EQUIVALENT" : "DIVERGED",
              static_cast<unsigned long long>(batch.clustering.num_clusters),
              static_cast<unsigned long long>(mine.num_clusters));
  return eq.equivalent ? 0 : 1;
}
