// Sensor anomaly detection: DBSCAN's noise points ARE the detector.
//
// A fleet of machines emits 10-dimensional feature vectors (the paper's
// dimensionality). Healthy machines cluster into a few operating modes;
// faulty readings land far from every mode. DBSCAN labels them noise — no
// training, no mode count needed. The example also shows the pipeline
// surviving injected executor faults (the paper's motivation for Spark over
// MPI): the run is repeated with a 50% task-failure rate and must produce
// the identical anomaly set via lineage recomputation.
//
//   ./sensor_anomaly [--readings 4000] [--modes 5] [--anomalies 40]
#include <cstdio>

#include "core/quality.hpp"
#include "core/spark_dbscan.hpp"
#include "synth/generators.hpp"
#include "util/flags.hpp"

using namespace sdb;

int main(int argc, char** argv) {
  Flags flags;
  flags.add_i64("readings", 4000, "healthy sensor readings");
  flags.add_i64("modes", 5, "operating modes (true clusters)");
  flags.add_i64("anomalies", 40, "injected anomalous readings");
  flags.add_i64("partitions", 8, "executors / partitions");
  flags.add_i64("seed", 13, "data seed");
  flags.parse(argc, argv);

  // 1. Healthy readings: tight 10-d Gaussian modes. Anomalies: uniform
  //    points over the whole feature box, injected at known indices.
  Rng rng(static_cast<u64>(flags.i64_flag("seed")));
  synth::GaussianMixtureConfig healthy_cfg;
  healthy_cfg.n = flags.i64_flag("readings");
  healthy_cfg.dim = 10;
  healthy_cfg.clusters = static_cast<int>(flags.i64_flag("modes"));
  healthy_cfg.sigma = 2.0;
  healthy_cfg.noise_fraction = 0.0;
  healthy_cfg.center_separation_sigmas = 40.0;
  healthy_cfg.box_side = 600.0;
  const PointSet healthy = synth::gaussian_clusters(healthy_cfg, rng);

  PointSet readings(10);
  readings.reserve(healthy.size() +
                   static_cast<size_t>(flags.i64_flag("anomalies")));
  for (PointId i = 0; i < static_cast<PointId>(healthy.size()); ++i) {
    readings.add(healthy[i]);
  }
  std::vector<PointId> injected;
  std::vector<double> p(10);
  for (i64 a = 0; a < flags.i64_flag("anomalies"); ++a) {
    for (auto& x : p) x = rng.uniform(0.0, healthy_cfg.box_side);
    injected.push_back(readings.add(p));
  }

  // 2. Cluster. eps tuned to the mode width: readings within a mode sit
  //    ~sigma*sqrt(2d) ~ 9 apart; eps = 12 links modes internally only.
  dbscan::SparkDbscanConfig config;
  config.params = {12.0, 5};
  config.partitions = static_cast<u32>(flags.i64_flag("partitions"));

  auto run = [&](double fault_rate) {
    minispark::ClusterConfig cluster;
    cluster.executors = config.partitions;
    cluster.fault_injection_rate = fault_rate;
    cluster.max_task_attempts = 8;
    minispark::SparkContext ctx(cluster);
    dbscan::SparkDbscan dbscan(ctx, config);
    auto report = dbscan.run(readings);
    return std::make_pair(std::move(report),
                          ctx.last_job().failures_injected);
  };

  const auto [clean, clean_failures] = run(0.0);

  // 3. Score the detector.
  u64 caught = 0;
  for (const PointId a : injected) {
    caught += clean.clustering.labels[static_cast<size_t>(a)] == kNoise ? 1 : 0;
  }
  const u64 flagged = clean.clustering.noise_count();
  std::printf("readings: %zu (%lld injected anomalies)\n", readings.size(),
              static_cast<long long>(flags.i64_flag("anomalies")));
  std::printf("operating modes found: %llu (true: %lld)\n",
              static_cast<unsigned long long>(clean.clustering.num_clusters),
              static_cast<long long>(flags.i64_flag("modes")));
  std::printf("anomalies caught: %llu / %zu   false alarms: %llu\n",
              static_cast<unsigned long long>(caught), injected.size(),
              static_cast<unsigned long long>(flagged - caught));

  // 4. Same run under executor faults: lineage recomputation must give the
  //    byte-identical labeling (the Spark-over-MPI argument, measured).
  const auto [faulty, injected_failures] = run(0.5);
  const bool identical = faulty.clustering.labels == clean.clustering.labels;
  std::printf("\nfault drill: %u task failures injected -> result %s\n",
              injected_failures, identical ? "IDENTICAL" : "DIVERGED (bug!)");
  return identical ? 0 : 1;
}
