// Quickstart: cluster the classic two-moons shape with the paper's
// Spark-style DBSCAN and render the result as ASCII art.
//
//   ./quickstart [--points 400] [--eps 0.12] [--minpts 5] [--partitions 4]
//
// Demonstrates the minimal public-API path:
//   SparkContext -> SparkDbscanConfig -> SparkDbscan::run(points).
#include <cstdio>

#include "core/quality.hpp"
#include "core/spark_dbscan.hpp"
#include "synth/generators.hpp"
#include "util/flags.hpp"

using namespace sdb;

namespace {

/// Tiny ASCII scatter plot: one character per cluster, '.' for noise.
void render(const PointSet& points, const dbscan::Clustering& clustering,
            int width, int height) {
  double min_x = 1e300;
  double max_x = -1e300;
  double min_y = 1e300;
  double max_y = -1e300;
  for (PointId i = 0; i < static_cast<PointId>(points.size()); ++i) {
    min_x = std::min(min_x, points[i][0]);
    max_x = std::max(max_x, points[i][0]);
    min_y = std::min(min_y, points[i][1]);
    max_y = std::max(max_y, points[i][1]);
  }
  std::vector<std::string> canvas(static_cast<size_t>(height),
                                  std::string(static_cast<size_t>(width), ' '));
  const char* glyphs = "#@*+oxsv%&";
  for (PointId i = 0; i < static_cast<PointId>(points.size()); ++i) {
    const int cx = static_cast<int>((points[i][0] - min_x) / (max_x - min_x) *
                                    (width - 1));
    const int cy = static_cast<int>((points[i][1] - min_y) / (max_y - min_y) *
                                    (height - 1));
    const ClusterId l = clustering.labels[static_cast<size_t>(i)];
    canvas[static_cast<size_t>(height - 1 - cy)][static_cast<size_t>(cx)] =
        l == kNoise ? '.' : glyphs[static_cast<size_t>(l) % 10];
  }
  for (const auto& row : canvas) std::printf("%s\n", row.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  flags.add_i64("points", 400, "points per moon");
  flags.add_f64("eps", 0.12, "DBSCAN eps");
  flags.add_i64("minpts", 5, "DBSCAN minpts");
  flags.add_i64("partitions", 4, "executors / partitions");
  flags.add_i64("seed", 7, "data seed");
  flags.parse(argc, argv);

  // 1. Generate two interleaved half-moons (k-means fails here; DBSCAN
  //    should find exactly two clusters).
  Rng rng(static_cast<u64>(flags.i64_flag("seed")));
  const PointSet points =
      synth::two_moons(flags.i64_flag("points"), 0.05, rng);

  // 2. Spin up the simulated cluster and run the paper's pipeline.
  minispark::ClusterConfig cluster;
  cluster.executors = static_cast<u32>(flags.i64_flag("partitions"));
  minispark::SparkContext ctx(cluster);

  dbscan::SparkDbscanConfig config;
  config.params = {flags.f64("eps"), flags.i64_flag("minpts")};
  config.partitions = static_cast<u32>(flags.i64_flag("partitions"));
  dbscan::SparkDbscan dbscan(ctx, config);
  const auto report = dbscan.run(points);

  // 3. Report.
  const auto stats = dbscan::summarize(report.clustering);
  std::printf("two-moons: %zu points -> %llu clusters, %llu noise points\n",
              points.size(),
              static_cast<unsigned long long>(stats.clusters),
              static_cast<unsigned long long>(stats.noise));
  std::printf("partial clusters: %llu  (merged across %u partitions)\n",
              static_cast<unsigned long long>(report.partial_clusters),
              config.partitions);
  std::printf("simulated time: executors %.4fs + driver %.4fs = %.4fs\n\n",
              report.sim_executor_s, report.sim_driver_s(),
              report.sim_total_s());
  render(points, report.clustering, 78, 24);
  return 0;
}
