// Cluster scaling walk-through: how a run divides its time as the simulated
// cluster grows — the paper's Figures 6 and 8 condensed into one command.
//
//   ./cluster_scaling [--dataset r100k] [--scale 0.1] [--max_cores 64]
//
// For each power-of-two core count the same dataset is clustered and the
// phase breakdown (read / tree / broadcast / executors / collect / merge),
// the partial-cluster count, and the speedup vs the 1-core sequential run
// are printed. Useful for choosing a partition count before a real run.
#include <cstdio>

#include "core/dbscan_seq.hpp"
#include "core/spark_dbscan.hpp"
#include "spatial/kd_tree.hpp"
#include "synth/presets.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

using namespace sdb;

int main(int argc, char** argv) {
  Flags flags;
  flags.add_string("dataset", "r100k", "Table I preset");
  flags.add_f64("scale", 0.1, "dataset scale in (0,1]");
  flags.add_i64("max_cores", 64, "largest core count (swept in powers of 2)");
  flags.add_i64("seed", 17, "experiment seed");
  flags.add_i64("gantt_cores", 8,
                "also draw the executor-phase Gantt chart at this core "
                "count (0 = off)");
  flags.parse(argc, argv);

  const auto spec = synth::find_preset(flags.string("dataset"));
  SDB_CHECK(spec.has_value(), "unknown preset: " + flags.string("dataset"));
  const u64 seed = static_cast<u64>(flags.i64_flag("seed"));
  const PointSet points = synth::generate(*spec, seed, flags.f64("scale"));
  const dbscan::DbscanParams params{spec->eps, spec->minpts};
  std::printf("%s @ scale %.2f -> %zu points, d=%d, eps=%.0f, minpts=%lld\n\n",
              spec->name.c_str(), flags.f64("scale"), points.size(),
              points.dim(), params.eps,
              static_cast<long long>(params.minpts));

  // Sequential baseline on the same simulated clock.
  const minispark::CostModel cost;
  WorkCounters tree_wc;
  const KdTree tree(points);
  auto seq = dbscan::dbscan_sequential(points, tree, params);
  const double seq_s = cost.compute_seconds(seq.counters);
  std::printf("sequential clustering: %.3fs simulated, %llu clusters, "
              "%llu noise\n\n",
              seq_s,
              static_cast<unsigned long long>(seq.clustering.num_clusters),
              static_cast<unsigned long long>(seq.clustering.noise_count()));

  TablePrinter table({"cores", "m (partial)", "read", "tree", "bcast",
                      "exec", "collect", "merge", "speedup"});
  for (u32 cores = 1; cores <= static_cast<u32>(flags.i64_flag("max_cores"));
       cores *= 2) {
    minispark::ClusterConfig cluster;
    cluster.executors = cores;
    cluster.seed = seed;
    minispark::SparkContext ctx(cluster);
    dbscan::SparkDbscanConfig config;
    config.params = params;
    config.partitions = cores;
    config.seed = seed;
    dbscan::SparkDbscan dbscan(ctx, config);
    const auto r = dbscan.run(points);
    if (cores == static_cast<u32>(flags.i64_flag("gantt_cores"))) {
      std::vector<double> durations;
      for (const auto& t : ctx.last_job().tasks) durations.push_back(t.sim_s);
      std::printf("executor-phase schedule at %u cores (digits = task %% 10; "
                  "'.' = idle):\n%s\n",
                  cores,
                  minispark::render_gantt(
                      minispark::list_schedule(durations, cores), cores)
                      .c_str());
    }
    table.add_row({TablePrinter::cell(static_cast<u64>(cores)),
                   TablePrinter::cell(r.partial_clusters),
                   TablePrinter::cell(r.sim_read_s, 4),
                   TablePrinter::cell(r.sim_tree_s, 4),
                   TablePrinter::cell(r.sim_broadcast_s, 4),
                   TablePrinter::cell(r.sim_executor_s, 4),
                   TablePrinter::cell(r.sim_collect_s, 4),
                   TablePrinter::cell(r.sim_merge_s, 4),
                   TablePrinter::cell(seq_s / r.sim_executor_s, 1)});
  }
  table.print("phase breakdown by simulated core count (seconds)");
  std::printf("\nspeedup = sequential clustering time / executor makespan\n");
  return 0;
}
