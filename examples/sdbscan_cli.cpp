// sdbscan — command-line DBSCAN over a points file.
//
// The downstream-user entry point: feed it a whitespace-separated text file
// (one point per line, any dimensionality), get one cluster label per line
// on stdout (-1 = noise) plus a summary on stderr.
//
//   ./sdbscan_cli data.txt --eps 0.5 --minpts 5 --partitions 8
//   ./sdbscan_cli data.txt --estimate_eps            # 4-dist heuristic
//   ./sdbscan_cli data.txt --engine seq|spark|mr
//   ./sdbscan_cli --demo                             # no file needed
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/dbscan_seq.hpp"
#include "core/mr_dbscan.hpp"
#include "core/quality.hpp"
#include "core/spark_dbscan.hpp"
#include "geom/distance.hpp"
#include "spatial/kd_tree.hpp"
#include "synth/generators.hpp"
#include "synth/io.hpp"
#include "util/flags.hpp"

using namespace sdb;

namespace {

double estimate_eps(const PointSet& points, size_t k) {
  const KdTree tree(points);
  std::vector<double> kdist;
  kdist.reserve(points.size());
  for (PointId i = 0; i < static_cast<PointId>(points.size()); ++i) {
    const auto nn = tree.knn(points[i], k + 1);
    kdist.push_back(sdb::distance(points[i], points[nn.back()]));
  }
  std::sort(kdist.begin(), kdist.end());
  return kdist[kdist.size() * 9 / 10];
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  flags.add_f64("eps", 0.5, "DBSCAN eps (ignored with --estimate_eps)");
  flags.add_bool("estimate_eps", false, "pick eps via the 4-dist heuristic");
  flags.add_i64("minpts", 5, "DBSCAN minpts");
  flags.add_i64("partitions", 8, "partitions/executors (spark/mr engines)");
  flags.add_string("engine", "spark", "seq | spark | mr");
  flags.add_bool("demo", false, "cluster a built-in demo dataset");
  flags.add_bool("quiet", false, "suppress the stderr summary");
  flags.parse(argc, argv);

  // --- load points ---
  PointSet points;
  if (flags.boolean("demo")) {
    Rng rng(7);
    points = synth::two_moons(500, 0.05, rng);
  } else {
    if (flags.positional().empty()) {
      std::fprintf(stderr, "usage: sdbscan_cli <points.txt> [flags] "
                           "(or --demo; --help for flags)\n");
      return 2;
    }
    const std::string& path = flags.positional().front();
    std::ifstream in(path);
    if (!in.good()) {
      std::fprintf(stderr, "cannot open %s\n", path.c_str());
      return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    points = synth::from_text(buffer.str());
  }
  if (points.empty()) {
    std::fprintf(stderr, "no points parsed\n");
    return 2;
  }

  const double eps = flags.boolean("estimate_eps")
                         ? estimate_eps(points, 4)
                         : flags.f64("eps");
  const dbscan::DbscanParams params{eps, flags.i64_flag("minpts")};
  const auto partitions = static_cast<u32>(flags.i64_flag("partitions"));

  // --- cluster with the chosen engine ---
  dbscan::Clustering clustering;
  const std::string& engine = flags.string("engine");
  if (engine == "seq") {
    const KdTree tree(points);
    clustering = dbscan::dbscan_sequential(points, tree, params).clustering;
  } else if (engine == "spark") {
    minispark::ClusterConfig cluster;
    cluster.executors = partitions;
    minispark::SparkContext ctx(cluster);
    dbscan::SparkDbscanConfig cfg;
    cfg.params = params;
    cfg.partitions = partitions;
    dbscan::SparkDbscan dbscan(ctx, cfg);
    clustering = dbscan.run(points).clustering;
  } else if (engine == "mr") {
    dbscan::MRDbscanConfig cfg;
    cfg.params = params;
    cfg.partitions = partitions;
    cfg.mr.work_dir =
        (std::filesystem::temp_directory_path() / "sdbscan_cli_mr").string();
    clustering = dbscan::mr_dbscan(points, cfg).clustering;
    std::filesystem::remove_all(cfg.mr.work_dir);
  } else {
    std::fprintf(stderr, "unknown --engine '%s' (seq | spark | mr)\n",
                 engine.c_str());
    return 2;
  }

  // --- output: one label per input line ---
  for (const ClusterId label : clustering.labels) {
    std::printf("%lld\n", static_cast<long long>(label));
  }
  if (!flags.boolean("quiet")) {
    const auto stats = dbscan::summarize(clustering);
    std::fprintf(stderr,
                 "sdbscan: %zu points (d=%d), eps=%.6g, minpts=%lld, "
                 "engine=%s -> %llu clusters (largest %llu, mean %.1f), "
                 "%llu noise\n",
                 points.size(), points.dim(), eps,
                 static_cast<long long>(params.minpts), engine.c_str(),
                 static_cast<unsigned long long>(stats.clusters),
                 static_cast<unsigned long long>(stats.largest),
                 stats.mean_size,
                 static_cast<unsigned long long>(stats.noise));
  }
  return 0;
}
