// sdbscan — command-line DBSCAN over a points file.
//
// The downstream-user entry point: feed it a whitespace-separated text file
// (one point per line, any dimensionality), get one cluster label per line
// on stdout (-1 = noise) plus a summary on stderr.
//
//   ./sdbscan_cli data.txt --eps 0.5 --minpts 5 --partitions 8
//   ./sdbscan_cli data.txt --estimate_eps            # 4-dist heuristic
//   ./sdbscan_cli data.txt --engine seq|spark|mr
//   ./sdbscan_cli --demo                             # no file needed
//   ./sdbscan_cli --preset e10k64 --backend knn      # d=64 KNN-DBSCAN demo
//   ./sdbscan_cli data.txt --serve                   # then query via stdin
//
// --serve keeps the process alive after clustering and answers queries from
// stdin against a live serving model (src/serve/): `classify x y ...`,
// `label <id>`, `insert x y ...`, `remove <id>`, `summary`, `save <path>`,
// `quit`. Inserts/removes update the clustering incrementally and republish
// snapshots.
//
// With --shards/--replicas above 1, --serve runs the REPLICATED tier
// (src/replica/) instead: points route to consistent-hash shards, each
// shard is a primary + WAL-shipped followers, and the extra `kill <shard>`
// command SIGKILLs a shard's primary to demonstrate failover live —
// reads keep serving from the committed model while a follower is
// promoted. Commands: `classify`, `insert`, `summary`, `kill <shard>`,
// `quit`.
//
// --stream runs the STREAMING INGEST demo instead (src/stream/): the
// clustered points bootstrap a live registry behind an IngestPipeline, then
// `--stream-writers` unpaced producers firehose drifting-hotspot writes at
// it for `--stream-seconds` while classify queries keep answering from the
// last published epoch. Every degradation-ladder transition prints as it
// happens (healthy -> pressured -> degraded -> shedding and back down), and
// the run ends with a drain + final metrics — a terminal-sized tour of the
// overload ladder bench_streaming measures.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <thread>

#include "core/dbscan_seq.hpp"
#include "core/mr_dbscan.hpp"
#include "core/quality.hpp"
#include "core/spark_dbscan.hpp"
#include "geom/distance.hpp"
#include "knn/knn_backend.hpp"
#include "replica/sharded_cluster.hpp"
#include "serve/query_engine.hpp"
#include "spatial/kd_tree.hpp"
#include "stream/ingest_pipeline.hpp"
#include "synth/generators.hpp"
#include "synth/io.hpp"
#include "synth/presets.hpp"
#include "util/flags.hpp"
#include "util/stopwatch.hpp"

using namespace sdb;

namespace {

double estimate_eps(const PointSet& points, size_t k) {
  const KdTree tree(points);
  std::vector<double> kdist;
  kdist.reserve(points.size());
  for (PointId i = 0; i < static_cast<PointId>(points.size()); ++i) {
    const auto nn = tree.knn(points[i], k + 1);
    kdist.push_back(sdb::distance(points[i], points[nn.back()]));
  }
  std::sort(kdist.begin(), kdist.end());
  return kdist[kdist.size() * 9 / 10];
}

/// --serve loop: build a live registry from the clustered points, answer
/// line-oriented queries from stdin until EOF/quit. Returns exit status.
int serve_loop(const PointSet& points, const dbscan::DbscanParams& params,
               double core_sample, const std::string& wal_dir) {
  using namespace sdb::serve;
  ModelRegistry::Config reg_cfg;
  reg_cfg.params = params;
  // Interactive sessions expect an insert/remove to be visible in the very
  // next query, so republish after every mutation (a real deployment would
  // raise this to amortize snapshot rebuilds — see bench_serve_load).
  reg_cfg.publish_every = 1;
  reg_cfg.model_options.core_sample_fraction = core_sample;
  reg_cfg.wal_dir = wal_dir;  // empty = no durability
  ModelRegistry registry(reg_cfg, points.dim());
  if (!wal_dir.empty() && registry.wal_replayed() > 0) {
    // The replayed log already contains the bootstrap inserts from the
    // previous incarnation — bootstrapping again would double every point.
    std::fprintf(stderr,
                 "serve: recovered epoch %llu from WAL (%llu mutations "
                 "replayed, %llu uncommitted discarded); skipping bootstrap\n",
                 static_cast<unsigned long long>(registry.epoch()),
                 static_cast<unsigned long long>(registry.wal_replayed()),
                 static_cast<unsigned long long>(registry.wal_discarded()));
  } else {
    std::fprintf(stderr, "serve: bootstrapping model over %zu points...\n",
                 points.size());
    registry.bootstrap(points);
  }
  QueryEngine::Config eng_cfg;
  eng_cfg.threads = 2;
  QueryEngine engine(registry, eng_cfg);
  {
    const auto s = registry.model()->summary();
    std::fprintf(stderr,
                 "serve: ready — %llu clusters, %llu core points, epoch %llu. "
                 "commands: classify|insert <coords...>, label|remove <id>, "
                 "summary, save <path>, quit\n",
                 static_cast<unsigned long long>(s.num_clusters),
                 static_cast<unsigned long long>(s.core_points),
                 static_cast<unsigned long long>(s.epoch));
  }

  std::string line;
  while (std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string cmd;
    if (!(in >> cmd)) continue;
    if (cmd == "quit" || cmd == "exit") break;
    if (cmd == "summary") {
      const auto s = registry.model()->summary();
      std::printf("points=%llu clusters=%llu cores=%llu noise=%llu epoch=%llu\n",
                  static_cast<unsigned long long>(s.total_points),
                  static_cast<unsigned long long>(s.num_clusters),
                  static_cast<unsigned long long>(s.core_points),
                  static_cast<unsigned long long>(s.noise_points),
                  static_cast<unsigned long long>(s.epoch));
      continue;
    }
    if (cmd == "save") {
      std::string path;
      if (!(in >> path)) {
        std::printf("err save needs a path\n");
        continue;
      }
      registry.model()->save_file(path);
      std::printf("ok saved %s\n", path.c_str());
      continue;
    }
    Request req;
    if (cmd == "classify" || cmd == "insert") {
      req.type = cmd == "classify" ? RequestType::kClassify
                                   : RequestType::kInsert;
      double v = 0;
      while (in >> v) req.point.push_back(v);
    } else if (cmd == "label" || cmd == "remove") {
      req.type = cmd == "label" ? RequestType::kLookup : RequestType::kRemove;
      long long id = -1;
      if (!(in >> id)) {
        std::printf("err %s needs an id\n", cmd.c_str());
        continue;
      }
      req.id = static_cast<PointId>(id);
    } else {
      std::printf("err unknown command '%s'\n", cmd.c_str());
      continue;
    }
    const Reply reply = engine.execute(req);
    switch (reply.status) {
      case ReplyStatus::kOk:
        if (req.type == RequestType::kInsert) {
          std::printf("ok id=%lld epoch=%llu\n",
                      static_cast<long long>(reply.id),
                      static_cast<unsigned long long>(reply.epoch));
        } else if (req.type == RequestType::kRemove) {
          std::printf("ok removed=%lld\n", static_cast<long long>(reply.id));
        } else {
          std::printf("label=%lld epoch=%llu%s\n",
                      static_cast<long long>(reply.label),
                      static_cast<unsigned long long>(reply.epoch),
                      reply.cache_hit ? " (cached)" : "");
        }
        break;
      case ReplyStatus::kNotFound:
        std::printf("err not found\n");
        break;
      case ReplyStatus::kInvalid:
        std::printf("err invalid request (dimension or id)\n");
        break;
      case ReplyStatus::kOverloaded:
        std::printf("err overloaded\n");
        break;
      case ReplyStatus::kDegraded:
        std::printf("err degraded (registry writer stalled; reads still serve)\n");
        break;
    }
  }
  const auto m = engine.metrics();
  std::fprintf(stderr, "serve: done — %llu classify lookups served from cache\n",
               static_cast<unsigned long long>(m.cache_hits));
  return 0;
}

/// --serve with --shards/--replicas > 1: the replicated tier. The process
/// hosts every node (the subsystem is single-process by design — see
/// src/replica/replica_set.hpp); replication rounds and failure-detector
/// beats are driven between commands, so behavior is deterministic and
/// `kill` + the next few commands walk through a real failover.
int serve_topology_loop(const PointSet& points,
                        const dbscan::DbscanParams& params, size_t shards,
                        size_t replicas, const std::string& wal_dir) {
  using namespace sdb::replica;
  ShardedCluster::Options opts;
  opts.shards = shards;
  opts.replica.replicas = replicas;
  opts.replica.dir = wal_dir;  // empty = in-memory node logs
  opts.replica.registry.params = params;
  // Interactive sessions expect an insert to be visible in the very next
  // query, so publish on every mutation.
  opts.replica.registry.publish_every = 1;
  ShardedCluster cluster(opts, points.dim());
  std::fprintf(stderr,
               "serve: bootstrapping %zu points across %zu shards x %zu "
               "replicas...\n",
               points.size(), shards, replicas);
  cluster.bootstrap(points);
  const auto drive = [&] {
    // Beat the failure detector until every shard has a live primary again
    // (promotion needs heartbeat_timeout silent beats; bounded in case a
    // shard has no replicas left to promote)...
    for (int beat = 0; beat < 100; ++beat) {
      cluster.tick_all();
      cluster.pump_all();
      bool all_live = true;
      for (size_t s = 0; s < cluster.shards(); ++s) {
        all_live &= cluster.shard(s).has_live_primary();
      }
      if (all_live) break;
    }
    // ...then replicate until every live shard's commit watermark catches
    // its primary, so the next query sees this command's effect.
    for (int round = 0; round < 100'000; ++round) {
      cluster.pump_all();
      bool settled = true;
      for (size_t s = 0; s < cluster.shards(); ++s) {
        const ReplicaSet& rs = cluster.shard(s);
        if (!rs.has_live_primary()) continue;  // nobody left to promote
        const auto primary = rs.node_registry(rs.primary_index());
        settled &= rs.committed_epoch() >= primary->epoch();
      }
      if (settled) return;
    }
  };
  drive();
  for (size_t s = 0; s < cluster.shards(); ++s) {
    std::fprintf(stderr,
                 "serve: shard %zu ready — committed epoch %llu, primary "
                 "node %zu\n",
                 s,
                 static_cast<unsigned long long>(
                     cluster.shard(s).committed_epoch()),
                 cluster.shard(s).primary_index());
  }
  std::fprintf(stderr,
               "serve: commands: classify|insert <coords...>, summary, "
               "kill <shard>, quit\n");

  std::string line;
  while (std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string cmd;
    if (!(in >> cmd)) continue;
    if (cmd == "quit" || cmd == "exit") break;
    if (cmd == "summary") {
      for (size_t s = 0; s < cluster.shards(); ++s) {
        const ReplicaSet& rs = cluster.shard(s);
        std::printf("shard=%zu committed=%llu primary=%zu term=%llu "
                    "failovers=%llu stale_redirects=%llu\n",
                    s,
                    static_cast<unsigned long long>(rs.committed_epoch()),
                    rs.primary_index(),
                    static_cast<unsigned long long>(rs.term()),
                    static_cast<unsigned long long>(rs.failovers()),
                    static_cast<unsigned long long>(rs.stale_redirects()));
      }
      continue;
    }
    if (cmd == "kill") {
      size_t s = 0;
      if (!(in >> s) || s >= cluster.shards()) {
        std::printf("err kill needs a shard in [0, %zu)\n", cluster.shards());
        continue;
      }
      cluster.shard(s).kill_primary();
      std::printf("ok killed shard %zu primary (failover pending)\n", s);
      drive();
      continue;
    }
    if (cmd == "classify" || cmd == "insert") {
      std::vector<double> coords;
      double v = 0;
      while (in >> v) coords.push_back(v);
      if (static_cast<int>(coords.size()) != points.dim()) {
        std::printf("err expected %d coordinates\n", points.dim());
        continue;
      }
      if (cmd == "classify") {
        const auto r = cluster.classify(coords, 0);
        std::printf("label=%lld shard=%zu epoch=%llu%s\n",
                    static_cast<long long>(r.cluster),
                    cluster.shard_for(coords),
                    static_cast<unsigned long long>(r.epoch),
                    r.redirected ? " (redirected)" : "");
      } else {
        const auto r = cluster.insert(coords);
        if (r.has_value()) {
          std::printf("ok shard=%zu id=%lld\n", r->shard,
                      static_cast<long long>(r->id));
        } else {
          std::printf("err shard %zu has no live primary (failover in "
                      "progress)\n",
                      cluster.shard_for(coords));
        }
        drive();
      }
      continue;
    }
    std::printf("err unknown command '%s'\n", cmd.c_str());
  }
  return 0;
}

/// --stream: self-driving streaming-ingest demo. Bootstraps a registry from
/// the clustered points, then firehoses drifting-hotspot writes through an
/// IngestPipeline while printing every ladder transition live; classify
/// queries sample the published snapshot throughout. Exit 0 iff the ladder
/// recovered to kHealthy after the drain.
int stream_demo(const PointSet& points, const dbscan::DbscanParams& params,
                size_t writers, double seconds) {
  using namespace sdb::serve;
  using namespace sdb::stream;
  ModelRegistry::Config reg_cfg;
  reg_cfg.params = params;
  reg_cfg.publish_every = 0;  // the pipeline owns the epoch cadence
  ModelRegistry registry(reg_cfg, points.dim());
  std::fprintf(stderr, "stream: bootstrapping model over %zu points...\n",
               points.size());
  registry.bootstrap(points);

  // Print transitions as they happen (fired with the pipeline lock held —
  // stderr only, no calls back into the pipeline).
  IngestPipeline::Config cfg;
  cfg.queue_capacity = 1024;
  cfg.lag_capacity = 1024.0;
  cfg.batch_max = 64;
  cfg.on_transition = [](const LadderTransition& t) {
    std::fprintf(stderr,
                 "stream: ladder %s -> %s (queue %zu, lag %llu, "
                 "pressure %.2f)\n",
                 rung_name(t.from), rung_name(t.to), t.queue_depth,
                 static_cast<unsigned long long>(t.lag), t.pressure);
  };
  IngestPipeline pipeline(registry, cfg);
  QueryEngine::Config eng_cfg;
  eng_cfg.threads = 1;
  QueryEngine engine(registry, eng_cfg);

  // Bounding box of the input, so the demo hotspot drifts through the data.
  std::vector<double> lo(static_cast<size_t>(points.dim()));
  std::vector<double> hi(static_cast<size_t>(points.dim()));
  for (size_t d = 0; d < lo.size(); ++d) {
    lo[d] = hi[d] = points[0][d];
  }
  for (PointId i = 1; i < static_cast<PointId>(points.size()); ++i) {
    const auto p = points[i];
    for (size_t d = 0; d < lo.size(); ++d) {
      lo[d] = std::min(lo[d], p[d]);
      hi[d] = std::max(hi[d], p[d]);
    }
  }

  std::atomic<bool> stop{false};
  Stopwatch wall;
  std::vector<std::thread> threads;
  threads.reserve(writers);
  for (size_t w = 0; w < writers; ++w) {
    threads.emplace_back([&, w] {
      Rng rng(77 + w);
      std::vector<double> coords(lo.size());
      while (!stop.load(std::memory_order_relaxed)) {
        const double t = std::min(wall.seconds() / seconds, 1.0);
        for (size_t d = 0; d < coords.size(); ++d) {
          const double center = lo[d] + (0.1 + 0.8 * t) * (hi[d] - lo[d]);
          coords[d] = rng.normal(center, 0.02 * (hi[d] - lo[d]));
        }
        const SubmitResult r = pipeline.submit_insert(coords);
        if (!r.accepted) {
          std::this_thread::sleep_for(std::chrono::microseconds(
              static_cast<long>(r.retry_after_ms * 1000.0)));
        }
      }
    });
  }

  // Sample the read path once in a while: reads never block on the ladder.
  Request probe;
  probe.type = RequestType::kClassify;
  u64 probes = 0;
  u64 degraded_probes = 0;
  while (wall.seconds() < seconds) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    Rng rng(probes);
    const auto p =
        points[static_cast<PointId>(rng.uniform_index(points.size()))];
    probe.point.assign(p.begin(), p.end());
    const Reply reply = engine.execute(probe);
    ++probes;
    degraded_probes += reply.degraded_model ? 1 : 0;
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : threads) t.join();
  std::fprintf(stderr, "stream: firehose over, draining...\n");
  pipeline.drain();

  const StreamMetrics m = pipeline.metrics();
  std::fprintf(
      stderr,
      "stream: done — submitted %llu, accepted %llu, shed %llu, acked %llu "
      "(%.0f ops/s), %llu micro-epochs, %llu publishes\n"
      "stream: ladder up %llu / down %llu (entries: pressured %llu, "
      "degraded %llu, shedding %llu); %llu/%llu probes answered from a "
      "degraded snapshot; final rung %s\n",
      static_cast<unsigned long long>(m.submitted),
      static_cast<unsigned long long>(m.accepted),
      static_cast<unsigned long long>(m.shed),
      static_cast<unsigned long long>(m.acked),
      wall.seconds() > 0 ? static_cast<double>(m.acked) / wall.seconds() : 0.0,
      static_cast<unsigned long long>(m.batches),
      static_cast<unsigned long long>(m.publishes),
      static_cast<unsigned long long>(m.transitions_up),
      static_cast<unsigned long long>(m.transitions_down),
      static_cast<unsigned long long>(m.rung_entries[1]),
      static_cast<unsigned long long>(m.rung_entries[2]),
      static_cast<unsigned long long>(m.rung_entries[3]),
      static_cast<unsigned long long>(degraded_probes),
      static_cast<unsigned long long>(probes), rung_name(m.rung));
  pipeline.stop();
  return m.rung == LadderRung::kHealthy ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  flags.add_f64("eps", 0.5, "DBSCAN eps (ignored with --estimate_eps)");
  flags.add_bool("estimate_eps", false, "pick eps via the 4-dist heuristic");
  flags.add_i64("minpts", 5, "DBSCAN minpts");
  flags.add_i64("partitions", 8, "partitions/executors (spark/mr engines)");
  flags.add_i64("merge-threads", 1,
                "driver threads for the partial-cluster merge (spark/mr "
                "engines); 0 = hardware concurrency, labels are identical "
                "for any value");
  flags.add_string("engine", "spark", "seq | spark | mr");
  flags.add_string("backend", "exact",
                   "neighborhood backend (seq/spark engines): exact | knn "
                   "(approximate kNN graph; the high-dimensional mode)");
  flags.add_i64("knn-k", 16,
                "with --backend knn: graph neighbors per point (must be >= "
                "minpts - 1)");
  flags.add_bool("demo", false, "cluster a built-in demo dataset");
  flags.add_string("preset", "",
                   "generate a built-in synthetic dataset instead of reading "
                   "a file: c10k c100k r10k r100k r1m e10k64 e10k128 (the "
                   "e-presets are d=64/d=128 embedding workloads for "
                   "--backend knn); eps/minpts come from the preset");
  flags.add_bool("quiet", false, "suppress the stderr summary");
  flags.add_bool("serve", false,
                 "after clustering, answer queries from stdin (see header)");
  flags.add_f64("core_sample", 1.0,
                "serving core subsample fraction in (0,1] (DBSCAN++ knob)");
  flags.add_string("checkpoint-dir", "",
                   "crash-consistent job checkpoint directory (spark/mr "
                   "engines); partial results survive a driver death");
  flags.add_bool("resume", false,
                 "with --checkpoint-dir: recover committed partition results "
                 "from a previous crashed run and compute only the rest");
  flags.add_string("wal-dir", "",
                   "with --serve: registry write-ahead-log directory; a "
                   "restarted server replays it and republishes the last "
                   "committed epoch");
  flags.add_i64("shards", 1,
                "with --serve: consistent-hash shards; >1 (or --replicas>1) "
                "serves through the replicated tier");
  flags.add_i64("replicas", 1,
                "with --serve: WAL-shipped replicas per shard (primary + "
                "followers with automatic failover)");
  flags.add_bool("stream", false,
                 "after clustering, run the streaming-ingest firehose demo "
                 "(see header)");
  flags.add_i64("stream-writers", 2, "with --stream: producer threads");
  flags.add_f64("stream-seconds", 3.0, "with --stream: firehose duration");
  flags.parse(argc, argv);

  // --- load points ---
  PointSet points;
  std::optional<synth::DatasetSpec> preset;
  if (!flags.string("preset").empty()) {
    preset = synth::find_preset(flags.string("preset"));
    if (!preset) {
      std::fprintf(stderr, "unknown --preset '%s'\n",
                   flags.string("preset").c_str());
      return 2;
    }
    points = synth::generate(*preset, 42);
  } else if (flags.boolean("demo")) {
    Rng rng(7);
    points = synth::two_moons(500, 0.05, rng);
  } else {
    if (flags.positional().empty()) {
      std::fprintf(stderr, "usage: sdbscan_cli <points.txt> [flags] "
                           "(or --demo; --help for flags)\n");
      return 2;
    }
    const std::string& path = flags.positional().front();
    std::ifstream in(path);
    if (!in.good()) {
      std::fprintf(stderr, "cannot open %s\n", path.c_str());
      return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    points = synth::from_text(buffer.str());
  }
  if (points.empty()) {
    std::fprintf(stderr, "no points parsed\n");
    return 2;
  }

  const double eps = flags.boolean("estimate_eps") ? estimate_eps(points, 4)
                     : preset                      ? preset->eps
                                                   : flags.f64("eps");
  const dbscan::DbscanParams params{
      eps, preset ? preset->minpts : flags.i64_flag("minpts")};
  const auto partitions = static_cast<u32>(flags.i64_flag("partitions"));

  const std::string& backend = flags.string("backend");
  const bool use_knn = backend == "knn";
  if (!use_knn && backend != "exact") {
    std::fprintf(stderr, "unknown --backend '%s' (exact | knn)\n",
                 backend.c_str());
    return 2;
  }
  knn::KnnGraphConfig knn_cfg;
  knn_cfg.k = static_cast<u32>(flags.i64_flag("knn-k"));

  // --- cluster with the chosen engine ---
  dbscan::Clustering clustering;
  const std::string& engine = flags.string("engine");
  if (engine == "seq") {
    if (use_knn) {
      const knn::KnnGraph graph = knn::build_knn_graph(points, knn_cfg);
      clustering = knn::knn_dbscan(knn::KnnEpsGraph::build(graph, params));
    } else {
      const KdTree tree(points);
      clustering = dbscan::dbscan_sequential(points, tree, params).clustering;
    }
  } else if (engine == "spark") {
    minispark::ClusterConfig cluster;
    cluster.executors = partitions;
    minispark::SparkContext ctx(cluster);
    dbscan::SparkDbscanConfig cfg;
    cfg.params = params;
    if (use_knn) {
      cfg.backend = dbscan::DbscanBackend::kKnn;
      cfg.knn = knn_cfg;
    }
    cfg.partitions = partitions;
    cfg.checkpoint_dir = flags.string("checkpoint-dir");
    cfg.resume = flags.boolean("resume");
    cfg.merge_threads = static_cast<unsigned>(flags.i64_flag("merge-threads"));
    dbscan::SparkDbscan dbscan(ctx, cfg);
    const auto report = dbscan.run(points);
    if (!cfg.checkpoint_dir.empty() && !flags.boolean("quiet")) {
      std::fprintf(stderr,
                   "sdbscan: checkpoint %s — resumed %llu partitions, "
                   "executed %llu\n",
                   cfg.checkpoint_dir.c_str(),
                   static_cast<unsigned long long>(report.resumed_partitions),
                   static_cast<unsigned long long>(report.executed_partitions));
    }
    clustering = report.clustering;
  } else if (engine == "mr") {
    if (use_knn) {
      std::fprintf(stderr, "--backend knn supports seq and spark engines\n");
      return 2;
    }
    dbscan::MRDbscanConfig cfg;
    cfg.params = params;
    cfg.partitions = partitions;
    cfg.mr.work_dir =
        (std::filesystem::temp_directory_path() / "sdbscan_cli_mr").string();
    cfg.checkpoint_dir = flags.string("checkpoint-dir");
    cfg.resume = flags.boolean("resume");
    cfg.merge_threads = static_cast<unsigned>(flags.i64_flag("merge-threads"));
    const auto report = dbscan::mr_dbscan(points, cfg);
    if (!cfg.checkpoint_dir.empty() && !flags.boolean("quiet")) {
      std::fprintf(stderr,
                   "sdbscan: checkpoint %s — resumed %llu partitions, "
                   "executed %llu\n",
                   cfg.checkpoint_dir.c_str(),
                   static_cast<unsigned long long>(report.resumed_partitions),
                   static_cast<unsigned long long>(report.executed_partitions));
    }
    clustering = report.clustering;
    std::filesystem::remove_all(cfg.mr.work_dir);
  } else {
    std::fprintf(stderr, "unknown --engine '%s' (seq | spark | mr)\n",
                 engine.c_str());
    return 2;
  }

  if (flags.boolean("stream")) {
    return stream_demo(
        points, params,
        std::max<size_t>(1, static_cast<size_t>(flags.i64_flag("stream-writers"))),
        flags.f64("stream-seconds"));
  }

  if (flags.boolean("serve")) {
    if (!flags.boolean("quiet")) {
      const auto stats = dbscan::summarize(clustering);
      std::fprintf(stderr,
                   "sdbscan: clustered %zu points -> %llu clusters, "
                   "%llu noise; entering serve mode\n",
                   points.size(),
                   static_cast<unsigned long long>(stats.clusters),
                   static_cast<unsigned long long>(stats.noise));
    }
    const auto shards = static_cast<size_t>(flags.i64_flag("shards"));
    const auto replicas = static_cast<size_t>(flags.i64_flag("replicas"));
    if (shards > 1 || replicas > 1) {
      return serve_topology_loop(points, params, std::max<size_t>(1, shards),
                                 std::max<size_t>(1, replicas),
                                 flags.string("wal-dir"));
    }
    return serve_loop(points, params, flags.f64("core_sample"),
                      flags.string("wal-dir"));
  }

  // --- output: one label per input line ---
  for (const ClusterId label : clustering.labels) {
    std::printf("%lld\n", static_cast<long long>(label));
  }
  if (!flags.boolean("quiet")) {
    const auto stats = dbscan::summarize(clustering);
    std::fprintf(stderr,
                 "sdbscan: %zu points (d=%d), eps=%.6g, minpts=%lld, "
                 "engine=%s -> %llu clusters (largest %llu, mean %.1f), "
                 "%llu noise\n",
                 points.size(), points.dim(), eps,
                 static_cast<long long>(params.minpts), engine.c_str(),
                 static_cast<unsigned long long>(stats.clusters),
                 static_cast<unsigned long long>(stats.largest),
                 stats.mean_size,
                 static_cast<unsigned long long>(stats.noise));
  }
  return 0;
}
