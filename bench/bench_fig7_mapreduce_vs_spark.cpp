// Figure 7 — MapReduce vs Spark total time, 10k points, 1-8 cores.
//
// Paper numbers (seconds): MapReduce 1666 / 1248 / 832 / 521 at 1/2/4/8
// cores vs Spark 178 / 93 / 50 / 31 — a 9-16x gap that widens with cores.
// The gap's mechanism (and what this harness reproduces): MR pays per-job
// startup, per-task JVM launches, disk-materialized intermediates, and a
// distributed-cache reload per map task, where Spark keeps the kd-tree in
// memory behind a broadcast and ships partial clusters via an accumulator.
#include "bench_common.hpp"

#include <filesystem>

#include "core/mr_dbscan.hpp"

using namespace sdb;

int main(int argc, char** argv) {
  Flags flags;
  bench::add_common_flags(flags);
  flags.add_string("dataset", "r10k", "Table I preset (paper: 10k points)");
  flags.parse(argc, argv);
  const u64 seed = static_cast<u64>(flags.i64_flag("seed"));
  const auto spec = *synth::find_preset(flags.string("dataset"));
  const double scale = bench::resolve_scale(flags, spec.name);
  const PointSet points = synth::generate(spec, seed, scale);

  const std::string work_dir =
      (std::filesystem::temp_directory_path() / "sdb_bench_fig7").string();

  TablePrinter table({"cores", "MapReduce (s)", "Spark (s)", "MR / Spark"});
  for (const u32 cores : {1u, 2u, 4u, 8u}) {
    // --- MapReduce ---
    dbscan::MRDbscanConfig mr_cfg;
    mr_cfg.params = {spec.eps, spec.minpts};
    mr_cfg.partitions = std::max(cores, 1u);
    mr_cfg.seed = seed;
    mr_cfg.mr.work_dir = work_dir;
    mr_cfg.mr.cores = cores;
    const auto mr_report = dbscan::mr_dbscan(points, mr_cfg);

    // --- Spark ---
    minispark::SparkContext ctx(bench::cluster_config(cores, seed));
    dbscan::SparkDbscanConfig spark_cfg;
    spark_cfg.params = {spec.eps, spec.minpts};
    spark_cfg.partitions = cores;
    spark_cfg.seed = seed;
    dbscan::SparkDbscan spark(ctx, spark_cfg);
    const auto spark_report = spark.run(points);

    table.add_row({TablePrinter::cell(static_cast<u64>(cores)),
                   TablePrinter::cell(mr_report.sim_total_s, 3),
                   TablePrinter::cell(spark_report.sim_total_s(), 3),
                   TablePrinter::cell(
                       mr_report.sim_total_s / spark_report.sim_total_s(), 1)});
  }
  std::filesystem::remove_all(work_dir);

  bench::emit(table,
              "Figure 7: MapReduce vs Spark, " + spec.name + " (" +
                  std::to_string(points.size()) +
                  " points, d=10, eps=25, minpts=5)",
              flags.boolean("csv"));
  std::printf("Paper shape: Spark faster by roughly an order of magnitude, "
              "gap widening with cores.\n");
  return 0;
}
