// Hot-path benchmark + perf-regression baseline (BENCH_hotpath.json).
//
// Three sections, each measured on the legacy path (sequential build,
// row-major gather leaf scans — byte-equivalent to the pre-overhaul code)
// and on the optimized path (thread-pool parallel build, leaf-contiguous
// layout, blocked distance kernel):
//   build  — kd-tree construction wall time;
//   query  — exact range-query throughput through the executor's
//            range_query_budgeted entry point;
//   e2e    — the full spark_dbscan pipeline wall time.
// Results print as tables and are also written as machine-readable JSON
// (schema documented in README "Hot-path bench") so every future PR can
// diff its perf trajectory against the committed BENCH_hotpath.json.
//
// --smoke shrinks the datasets so the run finishes in seconds; it is wired
// into ctest under the `perf` label as a build-and-run regression smoke.
#include "bench_common.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "geom/distance_simd.hpp"

using namespace sdb;

namespace {

struct BuildNumbers {
  double seq_legacy_ms = 0.0;
  double seq_reorder_ms = 0.0;
  double parallel_ms = 0.0;
};

struct QueryNumbers {
  u64 queries = 0;
  double legacy_qps = 0.0;
  double blocked_qps = 0.0;
  double scalar_qps = 0.0;  ///< blocked layout, forced-scalar kernel
  u64 distance_evals_legacy = 0;
  u64 distance_evals_blocked = 0;
  u64 distance_evals_scalar = 0;
  u64 neighbors = 0;
};

struct E2eNumbers {
  bool pruned = false;
  u32 cores = 0;
  double legacy_wall_s = 0.0;
  double optimized_wall_s = 0.0;
  double sim_total_s = 0.0;
};

struct ScalingPoint {
  unsigned threads = 1;
  double build_ms = 0.0;   ///< parallel build, best of reps
  double query_qps = 0.0;  ///< aggregate across `threads` query threads
};

struct DatasetReport {
  std::string name;
  size_t n = 0;
  int dim = 0;
  double eps = 0.0;
  BuildNumbers build;
  QueryNumbers query;
  std::vector<ScalingPoint> scaling;
  E2eNumbers e2e;
  bool has_e2e = false;
};

double best_build_ms(const PointSet& points, const KdTreeOptions& options,
                     int reps) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    Stopwatch sw;
    const KdTree tree(points, options);
    best = std::min(best, sw.millis());
  }
  return best;
}

/// Round-robins the configs inside each rep so host-speed drift (routine on
/// virtualized hosts) hits every config equally instead of penalizing
/// whichever one happens to run last; each config reports its best pass.
void best_build_ms_interleaved(const PointSet& points,
                               std::span<const KdTreeOptions> options,
                               std::span<double* const> out, int reps) {
  for (double* o : out) *o = 1e300;
  for (int r = 0; r < reps; ++r) {
    for (size_t c = 0; c < options.size(); ++c) {
      Stopwatch sw;
      const KdTree tree(points, options[c]);
      *out[c] = std::min(*out[c], sw.millis());
    }
  }
}

/// Exact range queries from `queries` dataset points, round-robin. Each
/// variant is timed `reps` times and reports its best pass — on shared /
/// virtualized hosts the run-to-run swing is easily 2x, and best-of keeps
/// the legacy/blocked RATIO meaningful even when a slow window hits one of
/// the passes.
QueryNumbers measure_queries(const PointSet& points, const KdTree& legacy,
                             const KdTree& blocked, double eps, u64 queries,
                             int reps) {
  QueryNumbers out;
  out.queries = queries;
  const size_t stride = std::max<size_t>(1, points.size() / queries);
  std::vector<PointId> hits;
  u64 blocked_neighbors = 0;
  auto run = [&](const KdTree& tree, u64* evals, double* qps) {
    u64 neighbors = 0;
    double best_qps = 0.0;
    for (int rep = 0; rep < reps; ++rep) {
      WorkCounters wc;
      Stopwatch sw;
      neighbors = 0;
      {
        ScopedCounters scope(&wc);
        u64 done = 0;
        for (size_t i = 0; done < queries && i < points.size();
             i += stride, ++done) {
          hits.clear();
          tree.range_query_budgeted(points[static_cast<PointId>(i)], eps,
                                    QueryBudget{}, hits);
          neighbors += hits.size();
        }
      }
      best_qps = std::max(best_qps, static_cast<double>(queries) / sw.seconds());
      *evals = wc.distance_evals;
    }
    *qps = best_qps;
    out.neighbors = neighbors;
    return neighbors;
  };
  run(legacy, &out.distance_evals_legacy, &out.legacy_qps);
  blocked_neighbors =
      run(blocked, &out.distance_evals_blocked, &out.blocked_qps);
  // Scalar-vs-SIMD self-check: the same blocked tree re-queried with the
  // dispatched kernel pinned to the scalar fallback must report the exact
  // same distance_evals and neighbor totals (the kernels' bit-identical
  // contract, distance_simd.hpp). scalar_qps also isolates the kernel's
  // contribution from the layout/traversal work shared by both variants.
  simd::force_scalar(true);
  const u64 scalar_neighbors =
      run(blocked, &out.distance_evals_scalar, &out.scalar_qps);
  simd::force_scalar(false);
  out.neighbors = blocked_neighbors;
  SDB_CHECK(out.distance_evals_scalar == out.distance_evals_blocked,
            "forced-scalar rerun must evaluate the same candidates");
  SDB_CHECK(scalar_neighbors == blocked_neighbors,
            "forced-scalar rerun must find the same neighbors");
  return out;
}

/// Aggregate range-query throughput with `threads` concurrent query threads
/// sharing one (immutable) tree. STRONG scaling: `total_queries` is fixed
/// across thread counts and partitioned — each thread runs its share over
/// its own CONTIGUOUS chunk of the dataset at the same stride every arm
/// uses (the same access shape as the real pipeline, where every executor
/// range-queries its own spatial partition's points), with its own hits
/// buffer and thread-local WorkCounters, so the only shared state is the
/// read-only index. Fixed total work + equal stride keeps the 1-vs-N rows
/// comparable: earlier versions fixed PER-THREAD work, so higher thread
/// counts queried at a denser stride and the rows measured different
/// locality, not scaling. Chunked (not interleaved) assignment matters on a
/// timeslicing host: threads roaming the whole dataset evict each other's
/// tree regions at every context switch.
///
/// Measurement discipline (the old version's 1->4 thread "regression" was
/// entirely harness artifact): every worker warms up (faults in its stack,
/// hits buffer, and first tree pages), parks on a start flag, and only once
/// ALL workers are parked does the clock start — so thread spawn cost and
/// ragged starts are off the books. Best-of-`reps` absorbs scheduler noise,
/// which dominates when `threads` exceeds the host's cores and the workers
/// are purely timeslicing.
double threaded_query_qps(const PointSet& points, const KdTree& tree,
                          double eps, u64 total_queries, unsigned threads,
                          int reps) {
  double best_qps = 0.0;
  const size_t stride =
      std::max<size_t>(1, points.size() / std::max<u64>(1, total_queries));
  for (int rep = 0; rep < reps; ++rep) {
    std::atomic<unsigned> ready{0};
    std::atomic<bool> go{false};
    std::atomic<u64> total{0};
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        WorkCounters wc;
        ScopedCounters scope(&wc);
        std::vector<PointId> hits;
        const size_t chunk = points.size() / threads;
        const size_t begin = t * chunk;
        const size_t end = (t + 1 == threads) ? points.size() : begin + chunk;
        const u64 quota = total_queries / threads +
                          (t + 1 == threads ? total_queries % threads : 0);
        hits.clear();  // warmup query before signalling ready
        tree.range_query_budgeted(points[static_cast<PointId>(begin)], eps,
                                  QueryBudget{}, hits);
        ready.fetch_add(1, std::memory_order_release);
        while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
        u64 done = 0;
        for (size_t i = begin; done < quota && i < end; i += stride, ++done) {
          hits.clear();
          tree.range_query_budgeted(points[static_cast<PointId>(i)], eps,
                                    QueryBudget{}, hits);
        }
        total.fetch_add(done, std::memory_order_relaxed);
      });
    }
    while (ready.load(std::memory_order_acquire) < threads) {
      std::this_thread::yield();
    }
    Stopwatch sw;
    go.store(true, std::memory_order_release);
    for (std::thread& w : workers) w.join();
    best_qps = std::max(best_qps,
                        static_cast<double>(total.load()) / sw.seconds());
  }
  return best_qps;
}

E2eNumbers measure_e2e(const PointSet& points, const synth::DatasetSpec& spec,
                       u64 seed, bool pruned) {
  E2eNumbers out;
  out.pruned = pruned;
  out.cores = 8;
  dbscan::SparkDbscanConfig cfg;
  cfg.params = dbscan::DbscanParams{spec.eps, spec.minpts};
  cfg.partitions = out.cores;
  cfg.seed = seed;
  if (pruned) {
    cfg.budget.max_neighbors = 64;  // the paper's r1m pruning configuration
    cfg.min_partial_cluster_size = 4;
  }
  auto run = [&](unsigned threads, bool reorder) {
    minispark::SparkContext ctx(bench::cluster_config(out.cores, seed));
    cfg.index_build_threads = threads;
    cfg.index_reorder = reorder;
    dbscan::SparkDbscan dbscan(ctx, cfg);
    const auto report = dbscan.run(points);
    out.sim_total_s = report.sim_read_s + report.sim_tree_s +
                      report.sim_broadcast_s + report.sim_executor_s +
                      report.sim_collect_s + report.sim_merge_s;
    return report.wall_s;
  };
  out.legacy_wall_s = run(1, false);
  out.optimized_wall_s = run(0, true);
  return out;
}

void write_json(const std::string& path, const std::string& mode,
                unsigned threads, u64 seed,
                const std::vector<DatasetReport>& reports) {
  FILE* f = std::fopen(path.c_str(), "w");
  SDB_CHECK(f != nullptr, "cannot open bench output file");
  std::fprintf(f, "{\n  \"bench\": \"hotpath\",\n  \"mode\": \"%s\",\n",
               mode.c_str());
  std::fprintf(f, "  \"kernel_variant\": \"%s\",\n",
               simd::active_variant_name());
  std::fprintf(f, "  \"host_threads\": %u,\n",
               std::max(1u, std::thread::hardware_concurrency()));
  std::fprintf(f, "  \"build_threads\": %u,\n  \"seed\": %llu,\n", threads,
               static_cast<unsigned long long>(seed));
  std::fprintf(f, "  \"datasets\": [\n");
  for (size_t i = 0; i < reports.size(); ++i) {
    const DatasetReport& r = reports[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"n\": %zu, \"dim\": %d, "
                 "\"eps\": %.3f,\n",
                 r.name.c_str(), r.n, r.dim, r.eps);
    std::fprintf(f,
                 "     \"build\": {\"seq_legacy_ms\": %.3f, "
                 "\"seq_reorder_ms\": %.3f, \"parallel_ms\": %.3f, "
                 "\"parallel_speedup\": %.3f},\n",
                 r.build.seq_legacy_ms, r.build.seq_reorder_ms,
                 r.build.parallel_ms,
                 r.build.seq_legacy_ms / r.build.parallel_ms);
    std::fprintf(f,
                 "     \"query\": {\"queries\": %llu, \"legacy_qps\": %.1f, "
                 "\"blocked_qps\": %.1f, \"speedup\": %.3f, "
                 "\"scalar_qps\": %.1f, \"simd_speedup\": %.3f, "
                 "\"neighbors\": %llu,\n"
                 "               \"distance_evals_legacy\": %llu, "
                 "\"distance_evals_blocked\": %llu}",
                 static_cast<unsigned long long>(r.query.queries),
                 r.query.legacy_qps, r.query.blocked_qps,
                 r.query.blocked_qps / r.query.legacy_qps, r.query.scalar_qps,
                 r.query.blocked_qps / r.query.scalar_qps,
                 static_cast<unsigned long long>(r.query.neighbors),
                 static_cast<unsigned long long>(r.query.distance_evals_legacy),
                 static_cast<unsigned long long>(
                     r.query.distance_evals_blocked));
    std::fprintf(f, ",\n     \"scaling\": [");
    for (size_t s = 0; s < r.scaling.size(); ++s) {
      const ScalingPoint& sp = r.scaling[s];
      std::fprintf(f,
                   "%s{\"threads\": %u, \"build_ms\": %.3f, "
                   "\"query_qps\": %.1f}",
                   s == 0 ? "" : ", ", sp.threads, sp.build_ms, sp.query_qps);
    }
    std::fprintf(f, "]");
    if (r.has_e2e) {
      std::fprintf(f,
                   ",\n     \"e2e\": {\"pruned\": %s, \"cores\": %u, "
                   "\"legacy_wall_s\": %.3f, \"optimized_wall_s\": %.3f, "
                   "\"speedup\": %.3f, \"sim_total_s\": %.3f}",
                   r.e2e.pruned ? "true" : "false", r.e2e.cores,
                   r.e2e.legacy_wall_s, r.e2e.optimized_wall_s,
                   r.e2e.legacy_wall_s / r.e2e.optimized_wall_s,
                   r.e2e.sim_total_s);
    }
    std::fprintf(f, "}%s\n", i + 1 < reports.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  flags.add_bool("smoke", false,
                 "seconds-scale run for the perf ctest label (small datasets, "
                 "fewer queries)");
  flags.add_string("out", "BENCH_hotpath.json", "JSON output path");
  flags.add_i64("threads", 0,
                "parallel build threads (0 = hardware concurrency)");
  flags.add_i64("queries", 2000, "range queries per dataset");
  flags.add_i64("seed", 42, "dataset seed");
  flags.add_bool("csv", false, "also print tables as CSV");
  flags.parse(argc, argv);

  const bool smoke = flags.boolean("smoke");
  const u64 seed = static_cast<u64>(flags.i64_flag("seed"));
  const u64 queries =
      static_cast<u64>(flags.i64_flag("queries")) / (smoke ? 4 : 1);
  unsigned threads = static_cast<unsigned>(flags.i64_flag("threads"));
  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  const int build_reps = smoke ? 2 : 3;

  // 100k and 1M uniform points at the paper's d=10 (Table I r100k / r1m);
  // smoke shrinks both so the perf-label ctest stays in the seconds range.
  struct Run {
    const char* preset;
    double scale;
    bool e2e;
    bool e2e_pruned;
  };
  const std::vector<Run> runs =
      smoke ? std::vector<Run>{{"r10k", 1.0, true, false}}
            : std::vector<Run>{{"r100k", 1.0, true, false},
                               {"r1m", 1.0, true, true}};

  std::vector<DatasetReport> reports;
  for (const Run& run : runs) {
    const auto spec = *synth::find_preset(run.preset);
    const PointSet points = synth::generate(spec, seed, run.scale);
    DatasetReport r;
    r.name = spec.name;
    r.n = points.size();
    r.dim = points.dim();
    r.eps = spec.eps;

    const KdTreeOptions build_cfgs[] = {
        {.build_threads = 1, .reorder = false},
        {.build_threads = 1, .reorder = true},
        {.build_threads = threads, .reorder = true}};
    double* const build_outs[] = {&r.build.seq_legacy_ms,
                                  &r.build.seq_reorder_ms,
                                  &r.build.parallel_ms};
    best_build_ms_interleaved(points, build_cfgs, build_outs, build_reps);

    const KdTree legacy(points, {.build_threads = 1, .reorder = false});
    const KdTree blocked(points, {.build_threads = threads, .reorder = true});
    r.query = measure_queries(points, legacy, blocked, spec.eps, queries,
                              smoke ? 2 : 3);
    SDB_CHECK(r.query.distance_evals_legacy == r.query.distance_evals_blocked,
              "blocked kernel must evaluate exactly the scalar path's "
              "candidates");

    // Thread-scaling: parallel build and concurrent query throughput at
    // 1/2/4/hw threads (the ROADMAP's multi-thread build/query row).
    std::vector<unsigned> scale_threads = smoke
        ? std::vector<unsigned>{1, 2}
        : std::vector<unsigned>{1, 2, 4,
                                std::max(1u,
                                         std::thread::hardware_concurrency())};
    std::sort(scale_threads.begin(), scale_threads.end());
    scale_threads.erase(std::unique(scale_threads.begin(),
                                    scale_threads.end()),
                        scale_threads.end());
    // Interleave the reps across thread counts (round-robin, like the build
    // arms): on a throttled host, drift between back-to-back measurement
    // windows otherwise shows up as fake scaling dips.
    for (const unsigned t : scale_threads) {
      ScalingPoint sp;
      sp.threads = t;
      sp.build_ms = 1e300;
      sp.query_qps = 0.0;
      r.scaling.push_back(sp);
    }
    for (int rep = 0; rep < (smoke ? 2 : 5); ++rep) {
      for (size_t s = 0; s < scale_threads.size(); ++s) {
        ScalingPoint& sp = r.scaling[s];
        sp.build_ms = std::min(
            sp.build_ms,
            best_build_ms(points,
                          {.build_threads = sp.threads, .reorder = true}, 1));
        sp.query_qps = std::max(
            sp.query_qps,
            threaded_query_qps(points, blocked, spec.eps, queries, sp.threads,
                               1));
      }
    }

    if (run.e2e) {
      r.e2e = measure_e2e(points, spec, seed, run.e2e_pruned);
      r.has_e2e = true;
    }
    reports.push_back(r);

    TablePrinter table({"metric", "legacy", "optimized", "speedup"});
    table.add_row({"build (ms)", TablePrinter::cell(r.build.seq_legacy_ms, 1),
                   TablePrinter::cell(r.build.parallel_ms, 1),
                   TablePrinter::cell(
                       r.build.seq_legacy_ms / r.build.parallel_ms, 2)});
    table.add_row(
        {"query (q/s)", TablePrinter::cell(r.query.legacy_qps, 0),
         TablePrinter::cell(r.query.blocked_qps, 0),
         TablePrinter::cell(r.query.blocked_qps / r.query.legacy_qps, 2)});
    table.add_row(
        {"query scalar-kernel (q/s)", TablePrinter::cell(r.query.scalar_qps, 0),
         TablePrinter::cell(r.query.blocked_qps, 0),
         TablePrinter::cell(r.query.blocked_qps / r.query.scalar_qps, 2)});
    if (r.has_e2e) {
      table.add_row(
          {"e2e wall (s)", TablePrinter::cell(r.e2e.legacy_wall_s, 2),
           TablePrinter::cell(r.e2e.optimized_wall_s, 2),
           TablePrinter::cell(r.e2e.legacy_wall_s / r.e2e.optimized_wall_s,
                              2)});
    }
    bench::emit(table,
                "hot path: " + r.name + " (" + std::to_string(r.n) +
                    " points, d=" + std::to_string(r.dim) + ", " +
                    std::to_string(threads) + " build threads, kernel=" +
                    simd::active_variant_name() + ")",
                flags.boolean("csv"));

    TablePrinter scaling_table(
        {"threads", "build_ms", "build_speedup", "query_qps", "query_speedup"});
    for (const ScalingPoint& sp : r.scaling) {
      scaling_table.add_row(
          {TablePrinter::cell(static_cast<u64>(sp.threads)),
           TablePrinter::cell(sp.build_ms, 1),
           TablePrinter::cell(r.scaling.front().build_ms / sp.build_ms, 2),
           TablePrinter::cell(sp.query_qps, 0),
           TablePrinter::cell(sp.query_qps / r.scaling.front().query_qps, 2)});
    }
    bench::emit(scaling_table, "thread scaling: " + r.name,
                flags.boolean("csv"));
  }

  write_json(flags.string("out"), smoke ? "smoke" : "full", threads, seed,
             reports);
  return 0;
}
