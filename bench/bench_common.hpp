// Shared plumbing for the per-figure bench harnesses.
//
// Every harness reproduces one table/figure of the paper. Datasets default
// to a reduced scale so the whole bench suite completes in minutes on a
// laptop-class host; pass --full for the paper's exact sizes (Table I).
// All results are reported on the simulated cluster clock (see
// minispark/cost_model.hpp and DESIGN.md §2).
#pragma once

#include <string>

#include "core/dbscan_seq.hpp"
#include "core/spark_dbscan.hpp"
#include "minispark/spark_context.hpp"
#include "spatial/kd_tree.hpp"
#include "synth/presets.hpp"
#include "util/flags.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

namespace sdb::bench {

/// Default down-scale factor per Table I preset (1.0 = paper size).
inline double default_scale(const std::string& preset) {
  if (preset == "c10k" || preset == "r10k") return 1.0;
  if (preset == "c100k" || preset == "r100k") return 0.25;
  if (preset == "r1m") return 0.05;
  return 1.0;
}

/// Resolve the scale for a preset from --full / --scale flags.
inline double resolve_scale(const Flags& flags, const std::string& preset) {
  if (flags.boolean("full")) return 1.0;
  const double s = flags.f64("scale");
  return s > 0.0 ? s : default_scale(preset);
}

/// Register the flags every harness shares.
inline void add_common_flags(Flags& flags) {
  flags.add_bool("full", false, "run at the paper's full Table I sizes");
  flags.add_f64("scale", 0.0,
                "explicit dataset scale in (0,1]; 0 = per-preset default");
  flags.add_i64("seed", 42, "experiment seed (data, stragglers, faults)");
  flags.add_bool("csv", false, "also print tables as CSV");
}

/// Simulated-clock results of one sequential (1-core) DBSCAN run.
struct SeqBaseline {
  double sim_read_s = 0.0;
  double sim_tree_s = 0.0;
  double sim_cluster_s = 0.0;
  dbscan::Clustering clustering;

  [[nodiscard]] double sim_total_s() const {
    return sim_read_s + sim_tree_s + sim_cluster_s;
  }
};

/// Run the sequential baseline with the same cost model the cluster uses.
inline SeqBaseline sequential_baseline(const PointSet& points,
                                       const dbscan::DbscanParams& params,
                                       const minispark::CostModel& cost,
                                       const QueryBudget& budget = {}) {
  SeqBaseline out;
  WorkCounters read_wc;
  read_wc.bytes_read = points.byte_size();
  read_wc.points_processed = points.size();
  out.sim_read_s = cost.compute_seconds(read_wc);

  WorkCounters tree_wc;
  Stopwatch sw;
  std::unique_ptr<KdTree> tree;
  {
    ScopedCounters scope(&tree_wc);
    tree = std::make_unique<KdTree>(points);
    double log2n = 1.0;
    for (size_t x = points.size(); x > 1; x >>= 1) log2n += 1.0;
    tree_wc.distance_evals +=
        static_cast<u64>(static_cast<double>(points.size()) * log2n);
  }
  out.sim_tree_s = cost.compute_seconds(tree_wc);

  auto seq = dbscan::dbscan_sequential(points, *tree, params, budget);
  out.sim_cluster_s = cost.compute_seconds(seq.counters);
  out.clustering = std::move(seq.clustering);
  return out;
}

/// Cluster config the benches share: executors == cores, mild stragglers.
inline minispark::ClusterConfig cluster_config(u32 cores, u64 seed) {
  minispark::ClusterConfig cfg;
  cfg.executors = cores;
  cfg.cores_per_executor = 1;
  cfg.host_threads = 1;  // deterministic single-host execution
  cfg.seed = seed;
  cfg.straggler.fraction = 0.05;
  cfg.straggler.max_extra = 0.3;
  return cfg;
}

/// Figure benches reproduce the PAPER's system, so they default to the
/// paper's own choices: one SEED per foreign partition (Algorithm 3) and the
/// single-pass status merge (Algorithm 4). The sound variants (all-foreign +
/// union-find) are library defaults and are compared in bench_ablation_seeds.
inline void apply_paper_strategies(dbscan::SparkDbscanConfig& cfg) {
  cfg.seed_strategy = dbscan::SeedStrategy::kOnePerPartition;
  cfg.merge_strategy = dbscan::MergeStrategy::kPaperSinglePass;
}

inline void emit(const TablePrinter& table, const std::string& title,
                 bool csv) {
  table.print(title);
  if (csv) {
    std::fputs(table.to_csv().c_str(), stdout);
  }
  std::printf("\n");
}

}  // namespace sdb::bench
