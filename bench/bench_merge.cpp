// Merge scaling bench + perf-regression baseline (BENCH_merge.json).
//
// Reproduces the driver-side merge bottleneck behind the paper's Figure 8d
// speedup collapse (9279 partial clusters at 32 cores) and measures the fix:
//
//   paper     — Algorithm 4 single pass. Its "find master partial cluster
//               index" is a linear scan over the owner partition's cluster
//               list, so total work grows ~ edges x clusters: SUPERLINEAR in
//               the partial-cluster count.
//   uf-seq    — sequential union-find merge (one pass over the edges).
//   parallel  — the edge-based pipeline (core/merge.cpp) at 1/2/4/hw
//               threads, byte-identical output asserted against uf-seq.
//
// Wall time on a many-core host shows the thread scaling; the deterministic
// merge_ops column shows the algorithmic claim — paper ops-per-edge grows
// with m while the edge-based merge stays flat — independently of how many
// cores the bench host happens to have. Results print as tables and are
// written as machine-readable JSON (schema in README "Merge bench");
// --smoke shrinks the scales and runs under ctest -L perf.
#include "bench_common.hpp"

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "core/merge.hpp"
#include "util/rng.hpp"

using namespace sdb;

namespace {

/// Synthetic partial-cluster topology: `partitions` partitions holding
/// `clusters_per_partition` clusters of `kClusterSize` members each, every
/// cluster carrying `kSeedsPerCluster` seeds aimed at random foreign
/// members (plus a noise pool so the border-adoption path runs). This is
/// the shape of the r1m run that produced the paper's 9279 partial
/// clusters, reduced to its merge-relevant skeleton.
constexpr u32 kClusterSize = 8;
constexpr u32 kSeedsPerCluster = 4;
constexpr u32 kNoisePool = 16;

std::vector<dbscan::LocalClusterResult> make_topology(
    u32 partitions, u32 clusters_per_partition, u64 seed, u64* num_points) {
  const u64 block =
      static_cast<u64>(clusters_per_partition) * kClusterSize + kNoisePool;
  *num_points = block * partitions;
  Rng rng(seed);
  std::vector<dbscan::LocalClusterResult> locals(partitions);
  for (u32 p = 0; p < partitions; ++p) {
    auto& local = locals[p];
    local.partition = static_cast<PartitionId>(p);
    const PointId base = static_cast<PointId>(p * block);
    for (u32 c = 0; c < clusters_per_partition; ++c) {
      dbscan::PartialCluster pc;
      pc.partition = local.partition;
      pc.uid = dbscan::PartialCluster::make_uid(local.partition, c);
      for (u32 k = 0; k < kClusterSize; ++k) {
        const PointId id = base + c * kClusterSize + k;
        pc.members.push_back(id);
        if (k < kClusterSize / 2) local.core_points.push_back(id);
      }
      local.clusters.push_back(std::move(pc));
    }
    for (u32 k = 0; k < kNoisePool; ++k) {
      local.noise.push_back(base + static_cast<PointId>(block) - kNoisePool +
                            k);
    }
  }
  for (u32 p = 0; p < partitions; ++p) {
    for (auto& pc : locals[p].clusters) {
      for (u32 s = 0; s < kSeedsPerCluster; ++s) {
        u32 q = static_cast<u32>(rng.uniform_index(partitions - 1));
        if (q >= p) ++q;
        const PointId q_base = static_cast<PointId>(q * block);
        if (rng.chance(0.15)) {
          pc.seeds.push_back(q_base + static_cast<PointId>(block) -
                             kNoisePool +
                             static_cast<PointId>(rng.uniform_index(kNoisePool)));
        } else {
          pc.seeds.push_back(
              q_base +
              static_cast<PointId>(rng.uniform_index(
                  static_cast<u64>(clusters_per_partition) * kClusterSize)));
        }
      }
    }
    locals[p].seed_edges = dbscan::flatten_seed_edges(locals[p]);
  }
  return locals;
}

struct Measured {
  double wall_ms = 0.0;  ///< best of reps
  u64 merge_ops = 0;
  u64 cas_retries = 0;
  dbscan::MergeResult last;
};

Measured measure(const std::vector<dbscan::LocalClusterResult>& locals,
                 u64 num_points, dbscan::MergeStrategy strategy,
                 unsigned threads, int reps) {
  Measured out;
  out.wall_ms = 1e300;
  for (int r = 0; r < reps; ++r) {
    dbscan::MergeOptions opt;
    opt.strategy = strategy;
    opt.merge_threads = threads;
    Stopwatch sw;
    auto merged = dbscan::merge_partial_clusters(locals, num_points, opt);
    out.wall_ms = std::min(out.wall_ms, sw.millis());
    out.merge_ops = merged.counters.merge_ops;
    out.cas_retries = merged.stats.cas_retries;
    out.last = std::move(merged);
  }
  return out;
}

struct ThreadPoint {
  unsigned threads = 0;
  double wall_ms = 0.0;
  u64 cas_retries = 0;
};

struct ScaleReport {
  u32 partitions = 0;
  u64 m = 0;       ///< total partial clusters
  u64 edges = 0;
  u64 points = 0;
  Measured paper;
  Measured uf_seq;
  std::vector<ThreadPoint> parallel;
  bool identical = true;  ///< parallel labels byte-equal to uf_seq, all t
};

void write_json(const std::string& path, const std::string& mode, u64 seed,
                const std::vector<ScaleReport>& reports) {
  FILE* f = std::fopen(path.c_str(), "w");
  SDB_CHECK(f != nullptr, "cannot open bench output file");
  std::fprintf(f, "{\n  \"bench\": \"merge\",\n  \"mode\": \"%s\",\n",
               mode.c_str());
  std::fprintf(f, "  \"host_threads\": %u,\n  \"seed\": %llu,\n",
               std::max(1u, std::thread::hardware_concurrency()),
               static_cast<unsigned long long>(seed));
  std::fprintf(f, "  \"scales\": [\n");
  for (size_t i = 0; i < reports.size(); ++i) {
    const ScaleReport& r = reports[i];
    std::fprintf(f,
                 "    {\"partitions\": %u, \"partial_clusters\": %llu, "
                 "\"edges\": %llu, \"points\": %llu,\n",
                 r.partitions, static_cast<unsigned long long>(r.m),
                 static_cast<unsigned long long>(r.edges),
                 static_cast<unsigned long long>(r.points));
    std::fprintf(f,
                 "     \"paper\": {\"wall_ms\": %.3f, \"merge_ops\": %llu, "
                 "\"ops_per_edge\": %.2f},\n",
                 r.paper.wall_ms,
                 static_cast<unsigned long long>(r.paper.merge_ops),
                 static_cast<double>(r.paper.merge_ops) /
                     static_cast<double>(r.edges));
    std::fprintf(f,
                 "     \"uf_seq\": {\"wall_ms\": %.3f, \"merge_ops\": %llu, "
                 "\"ops_per_edge\": %.2f},\n",
                 r.uf_seq.wall_ms,
                 static_cast<unsigned long long>(r.uf_seq.merge_ops),
                 static_cast<double>(r.uf_seq.merge_ops) /
                     static_cast<double>(r.edges));
    std::fprintf(f, "     \"merge_ops_blowup\": %.2f,\n",
                 static_cast<double>(r.paper.merge_ops) /
                     static_cast<double>(r.uf_seq.merge_ops));
    std::fprintf(f, "     \"parallel\": [");
    for (size_t t = 0; t < r.parallel.size(); ++t) {
      const ThreadPoint& tp = r.parallel[t];
      std::fprintf(f,
                   "%s{\"threads\": %u, \"wall_ms\": %.3f, "
                   "\"cas_retries\": %llu}",
                   t == 0 ? "" : ", ", tp.threads, tp.wall_ms,
                   static_cast<unsigned long long>(tp.cas_retries));
    }
    std::fprintf(f, "],\n     \"identical\": %s}%s\n",
                 r.identical ? "true" : "false",
                 i + 1 < reports.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  flags.add_bool("smoke", false,
                 "seconds-scale run for the perf ctest label (small scales, "
                 "fewer reps)");
  flags.add_string("out", "BENCH_merge.json", "JSON output path");
  flags.add_i64("seed", 42, "topology seed");
  flags.add_bool("csv", false, "also print tables as CSV");
  flags.parse(argc, argv);

  const bool smoke = flags.boolean("smoke");
  const u64 seed = static_cast<u64>(flags.i64_flag("seed"));
  const int reps = smoke ? 2 : 3;
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());

  // Partial-cluster scales. The largest full cell matches the paper's r1m
  // observation (9279 partial clusters, 32 partitions).
  struct Scale {
    u32 partitions;
    u32 clusters_per_partition;
  };
  const std::vector<Scale> scales =
      smoke ? std::vector<Scale>{{8, 25}, {16, 50}}
            : std::vector<Scale>{{8, 125}, {16, 187}, {32, 290}};

  std::vector<unsigned> sweep{1, 2, 4, hw};
  std::sort(sweep.begin(), sweep.end());
  sweep.erase(std::unique(sweep.begin(), sweep.end()), sweep.end());

  std::vector<ScaleReport> reports;
  for (const Scale& scale : scales) {
    u64 num_points = 0;
    const auto locals = make_topology(scale.partitions,
                                      scale.clusters_per_partition, seed,
                                      &num_points);
    ScaleReport r;
    r.partitions = scale.partitions;
    r.m = static_cast<u64>(scale.partitions) * scale.clusters_per_partition;
    r.edges = r.m * kSeedsPerCluster;
    r.points = num_points;

    r.paper = measure(locals, num_points,
                      dbscan::MergeStrategy::kPaperSinglePass, 1, reps);
    r.uf_seq = measure(locals, num_points, dbscan::MergeStrategy::kUnionFind,
                       1, reps);
    for (const unsigned t : sweep) {
      auto m = measure(locals, num_points, dbscan::MergeStrategy::kUnionFind,
                       t, reps);
      if (m.last.clustering.labels != r.uf_seq.last.clustering.labels) {
        r.identical = false;
      }
      r.parallel.push_back({t, m.wall_ms, m.cas_retries});
    }
    SDB_CHECK(r.identical,
              "parallel merge must be byte-identical to sequential");

    TablePrinter table({"strategy", "wall_ms", "merge_ops", "ops/edge"});
    table.add_row({"paper", TablePrinter::cell(r.paper.wall_ms, 2),
                   TablePrinter::cell(r.paper.merge_ops),
                   TablePrinter::cell(static_cast<double>(r.paper.merge_ops) /
                                          static_cast<double>(r.edges),
                                      1)});
    table.add_row({"uf-seq", TablePrinter::cell(r.uf_seq.wall_ms, 2),
                   TablePrinter::cell(r.uf_seq.merge_ops),
                   TablePrinter::cell(
                       static_cast<double>(r.uf_seq.merge_ops) /
                           static_cast<double>(r.edges),
                       1)});
    bench::emit(table,
                "merge strategies: m=" + std::to_string(r.m) + " clusters, " +
                    std::to_string(r.edges) + " edges (" +
                    std::to_string(scale.partitions) + " partitions)",
                flags.boolean("csv"));

    TablePrinter scaling({"threads", "wall_ms", "speedup", "cas_retries"});
    for (const ThreadPoint& tp : r.parallel) {
      scaling.add_row(
          {TablePrinter::cell(static_cast<u64>(tp.threads)),
           TablePrinter::cell(tp.wall_ms, 2),
           TablePrinter::cell(r.parallel.front().wall_ms / tp.wall_ms, 2),
           TablePrinter::cell(tp.cas_retries)});
    }
    bench::emit(scaling, "parallel merge thread scaling: m=" +
                             std::to_string(r.m),
                flags.boolean("csv"));
    reports.push_back(std::move(r));
  }

  write_json(flags.string("out"), smoke ? "smoke" : "full", seed, reports);
  return 0;
}
