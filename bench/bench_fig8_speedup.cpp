// Figure 8 — speedup of DBSCAN-with-Spark. Left column: executor-only
// speedup; right column: executor + driver ("total") speedup.
//
// Paper results being reproduced in shape:
//   10k  (a/b): 1.9 / 3.6 / 6.2 at 2/4/8 cores; total curve flatter.
//   100k (c/d): 3.3 / 6.0 / 8.8 / 10.2 at 4/8/16/32; TOTAL drops to 5.6 at
//               32 cores because 9279 partial clusters land in the driver.
//   1m   (e/f): 58 / 83 / 110 / 137 at 64/128/256/512 (pruning + filter);
//               total close to executor-only because of the small-cluster
//               filter.
// Speedup baseline: the 1-core sequential algorithm on the same simulated
// clock (executor-only: clustering work; total: read + tree + clustering).
#include "bench_common.hpp"

using namespace sdb;

namespace {

struct Sweep {
  const char* dataset;
  std::vector<u32> cores;
  bool pruning;
};

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  bench::add_common_flags(flags);
  flags.parse(argc, argv);
  const u64 seed = static_cast<u64>(flags.i64_flag("seed"));

  const std::vector<Sweep> sweeps = {
      {"c10k", {2, 4, 8}, false},
      {"r10k", {2, 4, 8}, false},
      {"c100k", {4, 8, 16, 32}, false},
      {"r100k", {4, 8, 16, 32}, false},
      {"r1m", {64, 128, 256, 512}, true},
  };

  for (const auto& sweep : sweeps) {
    const auto spec = *synth::find_preset(sweep.dataset);
    const double scale = bench::resolve_scale(flags, spec.name);
    const PointSet points = synth::generate(spec, seed, scale);
    const dbscan::DbscanParams params{spec.eps, spec.minpts};

    QueryBudget budget;
    u64 min_pc = 0;
    if (sweep.pruning) {
      budget.max_neighbors = 64;
      min_pc = 4;
    }

    const minispark::CostModel cost;  // same pricing for serial and parallel
    const auto baseline =
        bench::sequential_baseline(points, params, cost, budget);

    TablePrinter table({"cores", "partial clusters", "exec speedup",
                        "total speedup", "exec (s)", "total (s)"});
    for (const u32 cores : sweep.cores) {
      minispark::SparkContext ctx(bench::cluster_config(cores, seed));
      dbscan::SparkDbscanConfig cfg;
      cfg.params = params;
      cfg.partitions = cores;
      cfg.seed = seed;
      bench::apply_paper_strategies(cfg);
      cfg.budget = budget;
      cfg.min_partial_cluster_size = min_pc;
      dbscan::SparkDbscan dbscan(ctx, cfg);
      const auto report = dbscan.run(points);

      const double exec_speedup =
          baseline.sim_cluster_s / report.sim_executor_s;
      const double total_speedup =
          baseline.sim_total_s() / report.sim_total_s();
      table.add_row({TablePrinter::cell(static_cast<u64>(cores)),
                     TablePrinter::cell(report.partial_clusters),
                     TablePrinter::cell(exec_speedup, 1),
                     TablePrinter::cell(total_speedup, 1),
                     TablePrinter::cell(report.sim_executor_s, 3),
                     TablePrinter::cell(report.sim_total_s(), 3)});
    }
    bench::emit(table,
                "Figure 8 (" + std::string(sweep.dataset) + ", " +
                    std::to_string(points.size()) +
                    " points): speedup vs 1-core sequential" +
                    (sweep.pruning ? " [pruning + small-cluster filter]" : ""),
                flags.boolean("csv"));
  }
  std::printf(
      "Paper shape: executor-only speedup near-linear; total speedup flatter, "
      "dipping where many partial clusters reach the driver (100k @ 32 "
      "cores).\n");
  return 0;
}
