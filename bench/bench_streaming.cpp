// Streaming-ingest firehose bench for src/stream/ (IngestPipeline).
//
// Pipeline under test: bootstrap a ModelRegistry with an n-point 2-D blob
// dataset, wrap it in an IngestPipeline (bounded queue -> micro-epoch
// batcher -> RCU publish) and a QueryEngine, then drive a sustained write
// firehose from `--writers` unpaced producer threads while one reader
// thread classifies against the live snapshot and records wall-clock
// latency. Each scenario runs two phases:
//
//   firehose — writers submit as fast as the admission gate allows for
//              `--seconds`; shed submits (the ladder's kShedding rung or a
//              full queue) sleep out the returned retry-after hint;
//   cooldown — writers stop, the reader keeps going for `--cooldown`
//              seconds, then drain() flushes the queue and publishes the
//              trailing lag. The run asserts the ladder walked back to
//              kHealthy — overload must be a mode, not a ratchet.
//
// Four write distributions stress different incremental-DBSCAN paths:
//
//   drifting  — a tight hotspot sweeps across the space (affected region
//               keeps moving; steady insert + trailing-edge removes);
//   appearing — a brand-new dense cluster grows where the bootstrap had
//               nothing (cluster birth under load);
//   vanishing — removes eat the bootstrap points while background inserts
//               continue (core demotions, cluster death);
//   hot_cell  — most inserts land in one tiny cell (worst-case recluster
//               contention; run with a smaller queue/lag budget so the
//               degradation ladder VISIBLY engages — the run asserts
//               nonzero up- and down-transitions here).
//
// Acceptance gates (SDB_CHECK, both modes): every scenario ends kHealthy
// with zero queue depth and lag, classify p99 stays under `--slo_ms`, and
// hot_cell shows ladder engagement + recovery. Results land in
// machine-readable JSON (--out, schema in README "Streaming bench") so
// future PRs diff against the committed BENCH_streaming.json. Like
// bench_serve_load this measures the real wall clock — this host's
// sustainable ingest rate, not the simulated cluster. --smoke shrinks the
// run to seconds-scale for the `perf` ctest label.
#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/latency_histogram.hpp"
#include "serve/query_engine.hpp"
#include "stream/ingest_pipeline.hpp"
#include "synth/generators.hpp"
#include "util/flags.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

using namespace sdb;
using namespace sdb::serve;
using namespace sdb::stream;

namespace {

enum class Scenario { kDrifting, kAppearing, kVanishing, kHotCell };

const char* scenario_name(Scenario s) {
  switch (s) {
    case Scenario::kDrifting: return "drifting";
    case Scenario::kAppearing: return "appearing";
    case Scenario::kVanishing: return "vanishing";
    case Scenario::kHotCell: return "hot_cell";
  }
  return "?";
}

/// Removable-id pool: fed by on_ack (applied inserts) on the batcher
/// thread, popped by writer threads for remove traffic. Pop-once, so every
/// remove targets a live id exactly once.
struct IdPool {
  std::mutex mu;
  std::vector<PointId> ids;

  void push(PointId id) {
    std::scoped_lock lock(mu);
    ids.push_back(id);
  }
  bool pop(Rng& rng, PointId& out) {
    std::scoped_lock lock(mu);
    if (ids.empty()) return false;
    const size_t k = static_cast<size_t>(rng.uniform_index(ids.size()));
    out = ids[k];
    ids[k] = ids.back();
    ids.pop_back();
    return true;
  }
};

/// Draw the next write for a scenario. `t` in [0,1) is firehose progress
/// (drives the drifting hotspot). Returns false for a remove (id in `rid`).
bool next_write(Scenario s, Rng& rng, double t, IdPool& pool,
                std::vector<double>& coords, PointId& rid) {
  const auto hotspot = [&](double cx, double cy, double sigma) {
    coords = {rng.normal(cx, sigma), rng.normal(cy, sigma)};
  };
  switch (s) {
    case Scenario::kDrifting:
      // Trailing-edge removes keep the live set bounded as the spot sweeps.
      if (rng.chance(0.25) && pool.pop(rng, rid)) return false;
      hotspot(0.1 + 0.8 * t, 0.5, 0.02);
      return true;
    case Scenario::kAppearing:
      if (rng.chance(0.9)) {
        hotspot(0.85, 0.85, 0.015);  // the newborn cluster
      } else {
        coords = {rng.uniform(), rng.uniform()};
      }
      return true;
    case Scenario::kVanishing:
      if (rng.chance(0.6) && pool.pop(rng, rid)) return false;
      coords = {rng.uniform(), rng.uniform()};
      return true;
    case Scenario::kHotCell:
      if (rng.chance(0.05) && pool.pop(rng, rid)) return false;
      if (rng.chance(0.85)) {
        hotspot(0.5, 0.5, 0.004);  // one tiny cell, maximal contention
      } else {
        coords = {rng.uniform(), rng.uniform()};
      }
      return true;
  }
  return true;
}

struct ScenarioResult {
  std::string name;
  double firehose_s = 0.0;
  double wall_s = 0.0;  ///< firehose + cooldown + drain
  StreamMetrics stream;
  u64 reads = 0;
  u64 degraded_reads = 0;
  HistogramSnapshot read_latency;
  bool slo_met = false;

  [[nodiscard]] double ingest_per_sec() const {
    return wall_s > 0 ? static_cast<double>(stream.acked) / wall_s : 0.0;
  }
  [[nodiscard]] double mean_batch() const {
    return stream.batches > 0 ? static_cast<double>(stream.batched_ops) /
                                    static_cast<double>(stream.batches)
                              : 0.0;
  }
};

ScenarioResult run_scenario(Scenario scenario, const PointSet& base,
                            const dbscan::DbscanParams& params,
                            size_t writers, double firehose_s,
                            double cooldown_s, double slo_ms, u64 seed) {
  ModelRegistry::Config reg_cfg;
  reg_cfg.params = params;
  reg_cfg.publish_every = 0;  // the pipeline owns the epoch cadence
  ModelRegistry registry(reg_cfg, base.dim());
  registry.bootstrap(base);

  IdPool pool;
  if (scenario == Scenario::kVanishing || scenario == Scenario::kDrifting) {
    // Seed remove traffic with the bootstrap ids (assigned 0..n-1).
    std::scoped_lock lock(pool.mu);
    pool.ids.reserve(base.size());
    for (size_t i = 0; i < base.size(); ++i) {
      pool.ids.push_back(static_cast<PointId>(i));
    }
  }

  IngestPipeline::Config cfg;
  if (scenario == Scenario::kHotCell) {
    // Tight budgets: the firehose must outrun the batcher so the ladder
    // demonstrably climbs (and, post-cooldown, demonstrably descends).
    cfg.queue_capacity = 1024;
    cfg.lag_capacity = 1024.0;
  } else {
    cfg.queue_capacity = 8192;
    cfg.lag_capacity = 8192.0;
  }
  cfg.batch_max = 256;
  cfg.batch_deadline_us = 1000;
  cfg.retry_after_ms = 0.5;
  using BatchOp = dbscan::IncrementalDbscan::BatchOp;
  cfg.on_ack = [&pool](const Ack& ack) {
    if (ack.applied && ack.op.kind == BatchOp::Kind::kInsert) {
      pool.push(ack.id);
    }
  };
  IngestPipeline pipeline(registry, cfg);

  QueryEngine::Config eng_cfg;
  eng_cfg.threads = 1;  // reads run synchronously on the reader thread
  QueryEngine engine(registry, eng_cfg);

  std::atomic<bool> stop_writers{false};
  std::atomic<bool> stop_reader{false};

  // Reader: classify near-data queries against whatever snapshot is
  // published, recording wall latency. Runs through firehose AND cooldown.
  LatencyHistogram read_hist;
  u64 reads = 0;
  u64 degraded_reads = 0;
  std::thread reader([&] {
    Rng rng(seed + 1);
    Request req;
    req.type = RequestType::kClassify;
    while (!stop_reader.load(std::memory_order_relaxed)) {
      const auto p =
          base[static_cast<PointId>(rng.uniform_index(base.size()))];
      req.point.assign(p.begin(), p.end());
      req.point[0] += rng.uniform(-0.01, 0.01);
      const auto t0 = std::chrono::steady_clock::now();
      const Reply reply = engine.execute(req);
      read_hist.record_nanos(static_cast<u64>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - t0)
              .count()));
      ++reads;
      degraded_reads += reply.degraded_model ? 1 : 0;
    }
  });

  // Writers: unpaced firehose; a shed submit sleeps out the backpressure
  // hint (that IS the protocol) and moves on — open loop, no per-op retry.
  std::vector<std::thread> writer_threads;
  writer_threads.reserve(writers);
  Stopwatch wall;
  for (size_t w = 0; w < writers; ++w) {
    writer_threads.emplace_back([&, w] {
      Rng rng(seed + 100 + w);
      std::vector<double> coords;
      PointId rid = -1;
      while (!stop_writers.load(std::memory_order_relaxed)) {
        const double t = wall.seconds() / firehose_s;
        const bool is_insert =
            next_write(scenario, rng, t < 1.0 ? t : 1.0, pool, coords, rid);
        const SubmitResult r = is_insert
                                   ? pipeline.submit_insert(coords)
                                   : pipeline.submit_remove(rid);
        if (!r.accepted) {
          if (!is_insert) pool.push(rid);  // shed remove: id is still live
          std::this_thread::sleep_for(std::chrono::microseconds(
              static_cast<long>(r.retry_after_ms * 1000.0)));
        }
      }
    });
  }

  while (wall.seconds() < firehose_s) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  stop_writers.store(true, std::memory_order_relaxed);
  for (std::thread& t : writer_threads) t.join();
  const double firehose_wall = wall.seconds();

  // Cooldown: reads continue, the batcher works off the backlog, the
  // ladder walks down. drain() is the explicit barrier + trailing publish.
  Stopwatch cooldown;
  while (cooldown.seconds() < cooldown_s) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  pipeline.drain();
  stop_reader.store(true, std::memory_order_relaxed);
  reader.join();

  ScenarioResult out;
  out.name = scenario_name(scenario);
  out.firehose_s = firehose_wall;
  out.wall_s = wall.seconds();
  out.stream = pipeline.metrics();
  out.reads = reads;
  out.degraded_reads = degraded_reads;
  out.read_latency = read_hist.snapshot();
  out.slo_met = out.read_latency.quantile_micros(0.99) <= slo_ms * 1000.0;
  pipeline.stop();

  // Overload must be a mode, not a ratchet: post-drain the pipeline is
  // healthy, empty, fully published, and the registry knobs are restored.
  SDB_CHECK(out.stream.rung == LadderRung::kHealthy,
            "ladder did not recover to kHealthy after the firehose");
  SDB_CHECK(out.stream.queue_depth == 0 && out.stream.lag == 0,
            "drain left queued or unpublished ops");
  SDB_CHECK(registry.core_sample_fraction() == 1.0,
            "degraded-rung core fraction was not restored");
  return out;
}

std::vector<std::string> scenario_row(const ScenarioResult& r) {
  const auto& m = r.stream;
  return {r.name,
          TablePrinter::cell(r.ingest_per_sec(), 0),
          TablePrinter::cell(m.acked),
          TablePrinter::cell(m.shed),
          TablePrinter::cell(r.mean_batch(), 1),
          TablePrinter::cell(m.transitions_up),
          TablePrinter::cell(m.transitions_down),
          TablePrinter::cell(r.read_latency.quantile_micros(0.50), 1),
          TablePrinter::cell(r.read_latency.quantile_micros(0.99), 1),
          TablePrinter::cell(r.degraded_reads),
          r.slo_met ? "yes" : "NO"};
}

void write_json(const std::string& path, bool smoke, u64 seed, size_t points,
                size_t writers, double slo_ms,
                const std::vector<ScenarioResult>& results) {
  FILE* f = std::fopen(path.c_str(), "w");
  SDB_CHECK(f != nullptr, "cannot open bench output file");
  std::fprintf(f, "{\n  \"bench\": \"streaming\",\n  \"mode\": \"%s\",\n",
               smoke ? "smoke" : "full");
  std::fprintf(f,
               "  \"points\": %zu,\n  \"writers\": %zu,\n"
               "  \"slo_ms\": %.2f,\n  \"seed\": %llu,\n  \"scenarios\": [\n",
               points, writers, slo_ms,
               static_cast<unsigned long long>(seed));
  for (size_t i = 0; i < results.size(); ++i) {
    const ScenarioResult& r = results[i];
    const auto& m = r.stream;
    std::fprintf(
        f,
        "    {\"name\": \"%s\", \"firehose_s\": %.2f, \"wall_s\": %.2f,\n"
        "     \"ingest_ops_per_sec\": %.0f, \"submitted\": %llu, "
        "\"accepted\": %llu, \"shed\": %llu,\n"
        "     \"acked\": %llu, \"nacked\": %llu, \"batches\": %llu, "
        "\"mean_batch\": %.1f, \"publishes\": %llu,\n"
        "     \"max_queue_depth\": %llu, \"transitions_up\": %llu, "
        "\"transitions_down\": %llu,\n"
        "     \"rung_entries\": [%llu, %llu, %llu, %llu], "
        "\"final_rung\": \"%s\",\n"
        "     \"reads\": %llu, \"degraded_reads\": %llu, "
        "\"read_p50_us\": %.1f, \"read_p99_us\": %.1f, "
        "\"read_p999_us\": %.1f, \"slo_met\": %s}%s\n",
        r.name.c_str(), r.firehose_s, r.wall_s, r.ingest_per_sec(),
        static_cast<unsigned long long>(m.submitted),
        static_cast<unsigned long long>(m.accepted),
        static_cast<unsigned long long>(m.shed),
        static_cast<unsigned long long>(m.acked),
        static_cast<unsigned long long>(m.nacked),
        static_cast<unsigned long long>(m.batches), r.mean_batch(),
        static_cast<unsigned long long>(m.publishes),
        static_cast<unsigned long long>(m.max_queue_depth),
        static_cast<unsigned long long>(m.transitions_up),
        static_cast<unsigned long long>(m.transitions_down),
        static_cast<unsigned long long>(m.rung_entries[0]),
        static_cast<unsigned long long>(m.rung_entries[1]),
        static_cast<unsigned long long>(m.rung_entries[2]),
        static_cast<unsigned long long>(m.rung_entries[3]),
        rung_name(m.rung), static_cast<unsigned long long>(r.reads),
        static_cast<unsigned long long>(r.degraded_reads),
        r.read_latency.quantile_micros(0.50),
        r.read_latency.quantile_micros(0.99),
        r.read_latency.quantile_micros(0.999),
        r.slo_met ? "true" : "false",
        i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  flags.add_i64("points", 20'000, "bootstrap model size (points)");
  flags.add_f64("eps", 0.02, "DBSCAN eps");
  flags.add_i64("minpts", 5, "DBSCAN minpts");
  flags.add_i64("writers", 3, "unpaced producer threads");
  flags.add_f64("seconds", 4.0, "firehose wall seconds per scenario");
  flags.add_f64("cooldown", 1.0, "post-firehose read-only seconds");
  flags.add_f64("slo_ms", 25.0, "classify p99 SLO (wall milliseconds)");
  flags.add_i64("seed", 42, "rng seed");
  flags.add_bool("csv", false, "also print CSV");
  flags.add_bool("smoke", false,
                 "seconds-scale run for the perf ctest label (small model, "
                 "short phases)");
  flags.add_string("out", "BENCH_streaming.json", "JSON output path");
  flags.parse(argc, argv);

  const bool smoke = flags.boolean("smoke");
  const auto n =
      static_cast<size_t>(flags.i64_flag("points") / (smoke ? 8 : 1));
  const auto writers = static_cast<size_t>(flags.i64_flag("writers"));
  const double seconds = flags.f64("seconds") / (smoke ? 8.0 : 1.0);
  const double cooldown = flags.f64("cooldown") / (smoke ? 2.0 : 1.0);
  const double slo_ms = flags.f64("slo_ms");
  const u64 seed = static_cast<u64>(flags.i64_flag("seed"));

  Rng rng(seed);
  std::printf("generating %zu 2-D points...\n", n);
  const PointSet base =
      synth::blobs_2d(static_cast<i64>(n), 12, 0.02,
                      static_cast<i64>(n) / 20, rng);
  const dbscan::DbscanParams params{flags.f64("eps"),
                                    flags.i64_flag("minpts")};

  const Scenario scenarios[] = {Scenario::kDrifting, Scenario::kAppearing,
                                Scenario::kVanishing, Scenario::kHotCell};
  std::vector<ScenarioResult> results;
  for (const Scenario s : scenarios) {
    std::printf("scenario %s: %zu writers x %.2fs firehose + %.2fs "
                "cooldown...\n",
                scenario_name(s), writers, seconds, cooldown);
    results.push_back(run_scenario(s, base, params, writers, seconds,
                                   cooldown, slo_ms, seed));
    const ScenarioResult& r = results.back();
    std::printf("  %s: %.0f acked ops/s, shed %" PRIu64 ", ladder up %"
                PRIu64 " / down %" PRIu64 ", read p99 %.1fus\n",
                r.name.c_str(), r.ingest_per_sec(), r.stream.shed,
                r.stream.transitions_up, r.stream.transitions_down,
                r.read_latency.quantile_micros(0.99));
  }

  TablePrinter table({"scenario", "ingest/s", "acked", "shed", "mean_batch",
                      "up", "down", "read_p50us", "read_p99us",
                      "degraded_reads", "slo_met"});
  for (const ScenarioResult& r : results) table.add_row(scenario_row(r));
  table.print("streaming firehose (wall clock, SLO " +
              TablePrinter::cell(slo_ms, 1) + "ms)");
  if (flags.boolean("csv")) std::fputs(table.to_csv().c_str(), stdout);

  // Acceptance gates: the ladder must VISIBLY engage under the hot-cell
  // firehose (and recover — checked per-scenario inside run_scenario), and
  // every scenario's classify p99 must hold the SLO.
  for (const ScenarioResult& r : results) {
    SDB_CHECK(r.slo_met, "classify p99 blew the --slo_ms budget");
    if (r.name == "hot_cell") {
      SDB_CHECK(r.stream.transitions_up > 0 && r.stream.transitions_down > 0,
                "hot_cell firehose never engaged the degradation ladder");
    }
  }

  write_json(flags.string("out"), smoke, seed, n, writers, slo_ms, results);
  return 0;
}
