// High-dimensional KNN-DBSCAN bench + regression baseline (BENCH_knn.json).
//
// The workload the backend exists for: synthetic embedding vectors (d=64 /
// d=128 presets, synth::embedding_clusters) where exact kd-tree range
// queries degenerate to linear scans. Per workload the bench measures:
//
//   exact — kd-tree build + sequential DBSCAN wall time and distance_evals
//           (the O(n^2)-shaped baseline the backend replaces);
//   knn   — NN-descent graph build (wall, rounds, evals, recall vs the
//           exact graph), eps-graph derivation, and the graph-BFS sweep;
//   gap   — the disagreement-bound harness vs the exact clustering (ARI,
//           label/noise/core mismatches). The run itself SDB_CHECKs the
//           bound (ARI >= 0.95, disagreement fraction <= 2%), so a
//           quality regression fails the perf smoke, not just a human
//           reading the numbers.
//
// --smoke shrinks n to seconds-scale and runs under ctest -L perf; full
// runs maintain the committed BENCH_knn.json (schema in README).
#include "bench_common.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/quality.hpp"
#include "spatial/brute_force.hpp"
#include "knn/disagreement.hpp"
#include "knn/knn_backend.hpp"
#include "synth/generators.hpp"
#include "util/rng.hpp"

using namespace sdb;

namespace {

struct WorkloadReport {
  std::string name;
  u64 n = 0;
  int dim = 0;
  int intrinsic_dim = 0;
  u32 k = 0;
  double eps = 0.0;
  i64 minpts = 5;

  double exact_tree_ms = 0.0;
  double exact_cluster_ms = 0.0;
  u64 exact_evals = 0;
  u64 exact_clusters = 0;
  u64 exact_noise = 0;

  double knn_graph_ms = 0.0;
  u32 knn_rounds = 0;
  u64 knn_graph_evals = 0;
  double knn_recall = 0.0;
  double knn_eps_graph_ms = 0.0;
  double knn_cluster_ms = 0.0;
  u64 knn_clusters = 0;
  u64 knn_noise = 0;

  knn::DisagreementReport gap;

  [[nodiscard]] double exact_total_ms() const {
    return exact_tree_ms + exact_cluster_ms;
  }
  [[nodiscard]] double knn_total_ms() const {
    return knn_graph_ms + knn_eps_graph_ms + knn_cluster_ms;
  }
  [[nodiscard]] double eval_ratio() const {
    return knn_graph_evals == 0
               ? 0.0
               : static_cast<double>(exact_evals) /
                     static_cast<double>(knn_graph_evals);
  }
};

WorkloadReport run_workload(const std::string& name, i64 n, int dim,
                            int intrinsic_dim, u32 k, u64 seed) {
  Rng rng(seed);
  synth::EmbeddingConfig cfg;
  cfg.n = n;
  cfg.dim = dim;
  // Harder geometry than the e-presets: ONE diffuse manifold of intrinsic
  // dimension 16 (real embedding corpora, vs the preset's ten well-separated
  // near-planar blobs) plus 2% uniform outliers. With separated blobs a
  // kd-tree still prunes BETWEEN clusters — accumulated per-coordinate
  // center offsets push whole-cluster boxes past eps after a few splits —
  // and the exact path only pays per-cluster scans. A single manifold
  // removes that last prunable structure: every deep box still spans the
  // full width of most coordinates, box-to-query distances sit far below
  // any useful eps, and exact DBSCAN degenerates to the true n^2 scan —
  // the regime the backend exists for.
  cfg.intrinsic_dim = intrinsic_dim;
  cfg.clusters = 1;
  cfg.center_separation = 3.0;  // sizes the outlier cube (6x RMS side)
  const PointSet ps = synth::embedding_clusters(cfg, rng);
  // Data-adaptive eps: the classic k-dist heuristic — median 16th-neighbor
  // distance over a deterministic 256-point sample. Distance concentration
  // makes any fixed multiple of the intra-cluster RMS a cliff whose position
  // shifts with cluster size (above it eps swallows the whole cluster and
  // k mutual rows cannot cover the neighborhood; below it everything is
  // noise). Anchoring eps to the observed k-dist keeps eps-neighborhoods at
  // the scale the graph's k rows cover at any n, while the exact path still
  // cannot box-prune a radius this small at this dimensionality.
  double eps = 0.0;
  {
    const BruteForceIndex brute(ps);
    const size_t stride = std::max<size_t>(1, ps.size() / 256);
    std::vector<KnnHit> hits;
    std::vector<double> kth;
    for (size_t p = 0; p < ps.size(); p += stride) {
      hits.clear();
      brute.knn_query(ps[p], 17, QueryBudget{}, hits);  // self + 16 neighbors
      kth.push_back(std::sqrt(hits.back().d2));
    }
    std::sort(kth.begin(), kth.end());
    eps = kth[kth.size() / 2];
  }
  const dbscan::DbscanParams params{eps, 5};

  WorkloadReport r;
  r.name = name;
  r.n = ps.size();
  r.dim = dim;
  r.intrinsic_dim = intrinsic_dim;
  r.k = k;
  r.eps = params.eps;
  r.minpts = params.minpts;

  // --- exact baseline: kd-tree + sequential DBSCAN ---
  std::unique_ptr<KdTree> tree;
  {
    Stopwatch sw;
    tree = std::make_unique<KdTree>(ps);
    r.exact_tree_ms = sw.millis();
  }
  dbscan::SeqResult exact;
  {
    WorkCounters wc;
    Stopwatch sw;
    {
      ScopedCounters scope(&wc);
      exact = dbscan::dbscan_sequential(ps, *tree, params);
    }
    r.exact_cluster_ms = sw.millis();
    r.exact_evals = wc.distance_evals;
  }
  r.exact_clusters = exact.clustering.num_clusters;
  r.exact_noise = exact.clustering.noise_count();

  // --- KNN backend: NN-descent graph -> eps-graph -> BFS sweep ---
  knn::KnnGraphConfig knn_cfg;
  knn_cfg.k = k;
  // rho = 0.5 (Dong et al.'s default): join costs scale with sample^2, and
  // half-rate sampling keeps recall within a point of full-rate on these
  // workloads (the run's own recall column + disagreement SDB_CHECK pin it).
  knn_cfg.sample = k / 2;
  knn::KnnGraphBuildStats stats;
  knn::KnnGraph graph;
  {
    Stopwatch sw;
    graph = knn::build_knn_graph(ps, knn_cfg, &stats);
    r.knn_graph_ms = sw.millis();
  }
  r.knn_rounds = stats.rounds;
  r.knn_graph_evals = stats.distance_evals;

  // Stride-sampled recall: exact rows for ~1k query points via the
  // brute-force kernel scan. (The full n^2 exact-graph oracle would
  // dominate the bench at committed scale; this is the quality instrument,
  // not the measured path.)
  {
    const BruteForceIndex brute(ps);
    const size_t stride = std::max<size_t>(1, ps.size() / 1024);
    std::vector<KnnHit> hits;
    u64 total = 0;
    u64 found = 0;
    for (size_t p = 0; p < ps.size(); p += stride) {
      const auto pid = static_cast<PointId>(p);
      hits.clear();
      brute.knn_query(ps[pid], knn_cfg.k + 1, QueryBudget{}, hits);
      for (const KnnHit& h : hits) {
        if (h.id == pid) continue;  // drop the self hit, keeping k rows
        ++total;
        if (graph.has_edge(pid, h.id)) ++found;
      }
    }
    r.knn_recall = total == 0
                       ? 1.0
                       : static_cast<double>(found) / static_cast<double>(total);
  }

  knn::KnnEpsGraph eps_graph;
  {
    Stopwatch sw;
    eps_graph = knn::KnnEpsGraph::build(graph, params);
    r.knn_eps_graph_ms = sw.millis();
  }
  dbscan::Clustering approx;
  {
    Stopwatch sw;
    approx = knn::knn_dbscan(eps_graph);
    r.knn_cluster_ms = sw.millis();
  }
  r.knn_clusters = approx.num_clusters;
  r.knn_noise = approx.noise_count();

  // --- disagreement bound: the backend may differ from exact DBSCAN only
  // within this envelope; regressions fail the run itself ---
  std::vector<char> exact_core(ps.size(), 0);
  for (const PointId c : exact.core_points) {
    exact_core[static_cast<size_t>(c)] = 1;
  }
  r.gap = knn::measure_disagreement(exact.clustering, approx, exact_core,
                                    eps_graph.core_mask());
  if (!r.gap.within(0.95, 0.02)) {
    // The fatal below carries no numbers; print them first so a CI failure
    // is diagnosable from the log alone.
    std::fprintf(stderr,
                 "%s: ari=%.4f frac=%.4f label=%llu noise=%llu core=%llu "
                 "clusters exact=%llu knn=%llu recall=%.4f\n",
                 name.c_str(), r.gap.ari, r.gap.disagreement_frac(),
                 static_cast<unsigned long long>(r.gap.label_disagreements),
                 static_cast<unsigned long long>(r.gap.noise_mismatches),
                 static_cast<unsigned long long>(r.gap.core_mismatches),
                 static_cast<unsigned long long>(r.exact_clusters),
                 static_cast<unsigned long long>(r.knn_clusters),
                 r.knn_recall);
  }
  SDB_CHECK(r.gap.within(0.95, 0.02),
            "KNN-DBSCAN drifted outside the disagreement bound "
            "(ARI >= 0.95, fraction <= 0.02)");
  return r;
}

void print_table(const std::vector<WorkloadReport>& reports, bool csv) {
  TablePrinter t({"workload", "n", "d", "exact_ms", "exact_evals", "knn_ms",
                  "graph_evals", "eval_ratio", "rounds", "recall", "ari",
                  "disagree_frac"});
  for (const auto& r : reports) {
    t.add_row({r.name, TablePrinter::cell(r.n),
               TablePrinter::cell(static_cast<i64>(r.dim)),
               TablePrinter::cell(r.exact_total_ms(), 1),
               TablePrinter::cell(r.exact_evals),
               TablePrinter::cell(r.knn_total_ms(), 1),
               TablePrinter::cell(r.knn_graph_evals),
               TablePrinter::cell(r.eval_ratio(), 2),
               TablePrinter::cell(static_cast<u64>(r.knn_rounds)),
               TablePrinter::cell(r.knn_recall, 4),
               TablePrinter::cell(r.gap.ari, 4),
               TablePrinter::cell(r.gap.disagreement_frac(), 5)});
  }
  t.print("KNN-DBSCAN vs exact DBSCAN (high-dimensional embeddings)");
  if (csv) std::printf("%s", t.to_csv().c_str());
}

void write_json(const std::string& path, const std::string& mode, u64 seed,
                const std::vector<WorkloadReport>& reports) {
  FILE* f = std::fopen(path.c_str(), "w");
  SDB_CHECK(f != nullptr, "cannot open bench output file");
  std::fprintf(f, "{\n  \"bench\": \"knn\",\n  \"mode\": \"%s\",\n",
               mode.c_str());
  std::fprintf(f, "  \"seed\": %llu,\n",
               static_cast<unsigned long long>(seed));
  std::fprintf(f, "  \"workloads\": [\n");
  for (size_t i = 0; i < reports.size(); ++i) {
    const WorkloadReport& r = reports[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"n\": %llu, \"dim\": %d, "
                 "\"intrinsic_dim\": %d, \"k\": %u, "
                 "\"eps\": %.6f, \"minpts\": %lld,\n",
                 r.name.c_str(), static_cast<unsigned long long>(r.n), r.dim,
                 r.intrinsic_dim, r.k, r.eps,
                 static_cast<long long>(r.minpts));
    std::fprintf(f,
                 "     \"exact\": {\"tree_ms\": %.3f, \"cluster_ms\": %.3f, "
                 "\"total_ms\": %.3f, \"distance_evals\": %llu, "
                 "\"clusters\": %llu, \"noise\": %llu},\n",
                 r.exact_tree_ms, r.exact_cluster_ms, r.exact_total_ms(),
                 static_cast<unsigned long long>(r.exact_evals),
                 static_cast<unsigned long long>(r.exact_clusters),
                 static_cast<unsigned long long>(r.exact_noise));
    std::fprintf(f,
                 "     \"knn\": {\"graph_ms\": %.3f, \"rounds\": %u, "
                 "\"graph_evals\": %llu, \"recall\": %.4f, "
                 "\"eps_graph_ms\": %.3f, \"cluster_ms\": %.3f, "
                 "\"total_ms\": %.3f, \"clusters\": %llu, \"noise\": %llu},\n",
                 r.knn_graph_ms, r.knn_rounds,
                 static_cast<unsigned long long>(r.knn_graph_evals),
                 r.knn_recall, r.knn_eps_graph_ms, r.knn_cluster_ms,
                 r.knn_total_ms(),
                 static_cast<unsigned long long>(r.knn_clusters),
                 static_cast<unsigned long long>(r.knn_noise));
    std::fprintf(f,
                 "     \"eval_ratio\": %.2f,\n"
                 "     \"disagreement\": {\"ari\": %.6f, "
                 "\"label_disagreements\": %llu, \"noise_mismatches\": %llu, "
                 "\"core_mismatches\": %llu, \"fraction\": %.6f}}%s\n",
                 r.eval_ratio(), r.gap.ari,
                 static_cast<unsigned long long>(r.gap.label_disagreements),
                 static_cast<unsigned long long>(r.gap.noise_mismatches),
                 static_cast<unsigned long long>(r.gap.core_mismatches),
                 r.gap.disagreement_frac(),
                 i + 1 < reports.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  flags.add_bool("smoke", false,
                 "seconds-scale run for the perf ctest label (2k points)");
  flags.add_string("out", "BENCH_knn.json", "JSON output path");
  flags.add_i64("seed", 42, "dataset seed");
  flags.add_bool("csv", false, "also print tables as CSV");
  flags.parse(argc, argv);

  const bool smoke = flags.boolean("smoke");
  const u64 seed = static_cast<u64>(flags.i64_flag("seed"));
  // Full scale sits past the wall-clock crossover where the exact path's
  // n^2 scan overtakes the descent build's ~n * sample^2 * rounds; the
  // d=128 workload crosses earlier because exact evals cost ~4x more per
  // point there while the descent eval count is dimension-independent.
  const i64 n64 = smoke ? 2'000 : 60'000;
  const i64 n128 = smoke ? 2'000 : 40'000;

  std::vector<WorkloadReport> reports;
  reports.push_back(run_workload("e64", n64, 64, 16, 32, seed));
  reports.push_back(run_workload("e128", n128, 128, 16, 32, seed));

  print_table(reports, flags.boolean("csv"));
  write_json(flags.string("out"), smoke ? "smoke" : "full", seed, reports);
  return 0;
}
