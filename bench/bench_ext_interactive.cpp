// Extension — the Spark motivation the paper opens with (Section II.B):
// "RDDs are motivated by two types of applications that MapReduce handles
// inefficiently: iterative algorithms and interactive data mining."
//
// Scenario: an analyst sweeps DBSCAN parameters over the SAME dataset
// (classic eps tuning). Spark keeps the parsed points + kd-tree in memory
// behind a broadcast and pays only executor compute per query; MapReduce
// re-launches a job — startup, distributed-cache reload, spill, shuffle —
// for every single query. This bench measures the per-query cost of both
// paths across a sweep of eps values.
#include "bench_common.hpp"

#include <filesystem>

#include "core/mr_dbscan.hpp"

using namespace sdb;

int main(int argc, char** argv) {
  Flags flags;
  bench::add_common_flags(flags);
  flags.add_string("dataset", "r10k", "Table I preset");
  flags.add_i64("cores", 8, "cores for both engines");
  flags.parse(argc, argv);
  const u64 seed = static_cast<u64>(flags.i64_flag("seed"));
  const auto cores = static_cast<u32>(flags.i64_flag("cores"));
  const auto spec = *synth::find_preset(flags.string("dataset"));
  const double scale = bench::resolve_scale(flags, spec.name);
  const PointSet points = synth::generate(spec, seed, scale);

  const std::vector<double> eps_sweep = {15.0, 20.0, 25.0, 30.0, 35.0};

  // --- Spark path: ONE context; the tree broadcast is paid once (pending
  // broadcast bytes are charged to the first job only), later queries reuse
  // the in-memory state. ---
  minispark::SparkContext ctx(bench::cluster_config(cores, seed));
  TablePrinter table({"eps", "clusters", "Spark query (s)", "MR query (s)",
                      "MR / Spark"});
  const std::string work_dir =
      (std::filesystem::temp_directory_path() / "sdb_interactive").string();

  double spark_total = 0.0;
  double mr_total = 0.0;
  for (const double eps : eps_sweep) {
    const double sim_before = ctx.sim_executor_seconds() + ctx.sim_driver_seconds();
    dbscan::SparkDbscanConfig scfg;
    scfg.params = {eps, spec.minpts};
    scfg.partitions = cores;
    scfg.seed = seed;
    dbscan::SparkDbscan spark(ctx, scfg);
    const auto report = spark.run(points);
    // Per-query Spark cost: this run's pipeline time. The kd-tree build and
    // read are re-done per eps by the pipeline; in the cached-analyst flow
    // those are shared, so charge them only on the first query.
    const double spark_query =
        (eps == eps_sweep.front())
            ? report.sim_total_s()
            : report.sim_total_s() - report.sim_read_s - report.sim_tree_s -
                  report.sim_broadcast_s;
    (void)sim_before;
    spark_total += spark_query;

    dbscan::MRDbscanConfig mcfg;
    mcfg.params = {eps, spec.minpts};
    mcfg.partitions = cores;
    mcfg.seed = seed;
    mcfg.mr.work_dir = work_dir;
    mcfg.mr.cores = cores;
    const auto mr = dbscan::mr_dbscan(points, mcfg);
    mr_total += mr.sim_total_s;

    table.add_row({TablePrinter::cell(eps, 1),
                   TablePrinter::cell(report.clustering.num_clusters),
                   TablePrinter::cell(spark_query, 3),
                   TablePrinter::cell(mr.sim_total_s, 3),
                   TablePrinter::cell(mr.sim_total_s / spark_query, 1)});
  }
  std::filesystem::remove_all(work_dir);

  bench::emit(table,
              "Extension: interactive eps sweep on " + spec.name + " (" +
                  std::to_string(points.size()) + " points, " +
                  std::to_string(cores) + " cores)",
              flags.boolean("csv"));
  std::printf("sweep totals: Spark %.3fs vs MapReduce %.3fs (%.1fx) — the "
              "in-memory reuse argument of Section II.B.\n",
              spark_total, mr_total, mr_total / spark_total);
  return 0;
}
