// Extension — the paper's future work: "high dimensional feature spaces
// will be investigated as well."
//
// Sweeps dimensionality at fixed n and density (eps solved per dimension so
// the expected neighborhood size stays constant), measuring what dimension
// does to each component: kd-tree effectiveness (node visits per query —
// the curse of dimensionality), executor time, speedup at a fixed core
// count, and clustering character. Also compares the kd-tree against the
// naive scan at each d, locating the crossover the paper's complexity
// discussion (Section V.B) glosses over.
#include "bench_common.hpp"

#include "core/quality.hpp"
#include "spatial/brute_force.hpp"
#include "synth/generators.hpp"

using namespace sdb;

int main(int argc, char** argv) {
  Flags flags;
  bench::add_common_flags(flags);
  flags.add_i64("points", 20000, "points per dimension setting");
  flags.add_i64("cores", 16, "cores for the parallel run");
  flags.parse(argc, argv);
  const u64 seed = static_cast<u64>(flags.i64_flag("seed"));
  const i64 n = flags.i64_flag("points");
  const auto cores = static_cast<u32>(flags.i64_flag("cores"));
  const minispark::CostModel cost;

  TablePrinter table({"d", "eps", "tree nodes/query", "kd-tree query (ops)",
                      "naive query (ops)", "seq (s)", "exec (s)", "speedup",
                      "clusters", "noise %"});

  for (const int dim : {2, 5, 10, 20, 40}) {
    // Solve eps for a constant expected neighborhood of 15 in a unit-density
    // box: keep density comparable across dimensions.
    Rng rng(derive_seed(seed, "dim-" + std::to_string(dim)));
    synth::UniformConfig ucfg;
    ucfg.n = n;
    ucfg.dim = dim;
    ucfg.box_side = 100.0;
    // eps from: n * V_d(eps) / side^d == 15.
    const double volume_needed =
        15.0 * std::pow(ucfg.box_side, dim) / static_cast<double>(n);
    const double eps = std::pow(
        volume_needed / synth::ball_volume(dim, 1.0), 1.0 / dim);
    const PointSet points =
        synth::spatially_sorted(synth::uniform_points(ucfg, rng));
    const dbscan::DbscanParams params{eps, 5};

    // Per-query index work at this dimension.
    const KdTree tree(points);
    const BruteForceIndex brute(points);
    WorkCounters kd_wc;
    WorkCounters brute_wc;
    {
      ScopedCounters scope(&kd_wc);
      std::vector<PointId> out;
      for (PointId q = 0; q < 200; ++q) tree.range_query(points[q], eps, out);
    }
    {
      ScopedCounters scope(&brute_wc);
      std::vector<PointId> out;
      for (PointId q = 0; q < 200; ++q) brute.range_query(points[q], eps, out);
    }

    const auto baseline = bench::sequential_baseline(points, params, cost);

    minispark::SparkContext ctx(bench::cluster_config(cores, seed));
    dbscan::SparkDbscanConfig cfg;
    cfg.params = params;
    cfg.partitions = cores;
    cfg.seed = seed;
    dbscan::SparkDbscan dbscan(ctx, cfg);
    const auto report = dbscan.run(points);

    const auto stats = dbscan::summarize(report.clustering);
    table.add_row(
        {TablePrinter::cell(static_cast<i64>(dim)),
         TablePrinter::cell(eps, 2),
         TablePrinter::cell(static_cast<double>(kd_wc.tree_nodes) / 200.0, 0),
         TablePrinter::cell(static_cast<double>(kd_wc.total_ops()) / 200.0, 0),
         TablePrinter::cell(static_cast<double>(brute_wc.total_ops()) / 200.0,
                            0),
         TablePrinter::cell(baseline.sim_cluster_s, 3),
         TablePrinter::cell(report.sim_executor_s, 3),
         TablePrinter::cell(baseline.sim_cluster_s / report.sim_executor_s, 1),
         TablePrinter::cell(stats.clusters),
         TablePrinter::cell(100.0 * static_cast<double>(stats.noise) /
                                static_cast<double>(points.size()),
                            1)});
  }

  bench::emit(table,
              "Extension: dimensionality sweep (n=" + std::to_string(n) +
                  ", density held at ~15 expected neighbors, " +
                  std::to_string(cores) + " cores)",
              flags.boolean("csv"));
  std::printf(
      "Expected: kd-tree node visits per query grow rapidly with d (curse of "
      "dimensionality) and approach the naive scan; executor speedup is "
      "dimension-insensitive because partitioned work stays balanced.\n");
  return 0;
}
