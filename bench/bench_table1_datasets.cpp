// Table I — properties of the test data.
//
// Regenerates all five datasets and prints the paper's table (name, points,
// d, eps, minpts) extended with measured density statistics that justify the
// synthetic substitution: mean eps-neighborhood size and the core/noise
// split under (eps=25, minpts=5).
#include "bench_common.hpp"

#include "core/quality.hpp"
#include "util/rng.hpp"

using namespace sdb;

int main(int argc, char** argv) {
  Flags flags;
  bench::add_common_flags(flags);
  flags.add_i64("density_sample", 2000,
                "points sampled per dataset for the density statistics");
  flags.parse(argc, argv);
  const u64 seed = static_cast<u64>(flags.i64_flag("seed"));

  TablePrinter table({"name", "points", "generated", "d", "eps", "minpts",
                      "mean |N_eps|", "core %", "noise %", "clusters"});

  for (const auto& spec : synth::table1_presets()) {
    const double scale = bench::resolve_scale(flags, spec.name);
    const PointSet points = synth::generate(spec, seed, scale);
    const KdTree tree(points);
    const dbscan::DbscanParams params{spec.eps, spec.minpts};

    // Density statistics over a sample.
    Rng rng(derive_seed(seed, "density-" + spec.name));
    const u64 sample = std::min<u64>(
        static_cast<u64>(flags.i64_flag("density_sample")), points.size());
    u64 neighbor_total = 0;
    u64 core = 0;
    std::vector<PointId> neighbors;
    for (u64 s = 0; s < sample; ++s) {
      const auto q = static_cast<PointId>(rng.uniform_index(points.size()));
      neighbors.clear();
      tree.range_query(points[q], params.eps, neighbors);
      neighbor_total += neighbors.size();
      core += static_cast<i64>(neighbors.size()) >= params.minpts ? 1 : 0;
    }

    const auto seq = dbscan::dbscan_sequential(points, tree, params);
    const auto stats = dbscan::summarize(seq.clustering);

    table.add_row(
        {spec.name, TablePrinter::cell(static_cast<i64>(spec.points)),
         TablePrinter::cell(static_cast<u64>(points.size())),
         TablePrinter::cell(static_cast<i64>(spec.dim)),
         TablePrinter::cell(spec.eps, 1),
         TablePrinter::cell(spec.minpts),
         TablePrinter::cell(static_cast<double>(neighbor_total) /
                                static_cast<double>(sample),
                            1),
         TablePrinter::cell(100.0 * static_cast<double>(core) /
                                static_cast<double>(sample),
                            1),
         TablePrinter::cell(100.0 * static_cast<double>(stats.noise) /
                                static_cast<double>(points.size()),
                            1),
         TablePrinter::cell(stats.clusters)});
  }

  bench::emit(table,
              "Table I: properties of test data "
              "(generated = points at the current --scale)",
              flags.boolean("csv"));
  return 0;
}
