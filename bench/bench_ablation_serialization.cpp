// Serialization ablation — the paper's Section IV.B remark made measurable:
// "When we are broadcasting large numbers of bytes, optimizing broadcasts is
// essential, such as choosing an appropriate data serialization format that
// is both fast and compact, and compression techniques."
//
// Compares the raw fixed-width wire format against the compact
// (sorted/delta/varint) codec on the accumulator path: bytes shipped,
// encode/decode CPU, collect time, and end-to-end simulated time — across
// partition counts (more partitions -> more partial clusters -> more wire
// data, so the codec's payoff grows exactly where the paper's driver
// bottleneck lives).
#include "bench_common.hpp"

using namespace sdb;

int main(int argc, char** argv) {
  Flags flags;
  bench::add_common_flags(flags);
  flags.add_string("dataset", "r100k", "Table I preset");
  flags.parse(argc, argv);
  const u64 seed = static_cast<u64>(flags.i64_flag("seed"));
  const auto spec = *synth::find_preset(flags.string("dataset"));
  const double scale = bench::resolve_scale(flags, spec.name);
  const PointSet points = synth::generate(spec, seed, scale);

  TablePrinter table({"cores", "codec", "acc bytes", "collect (s)",
                      "total (s)", "bytes saved %"});
  for (const u32 cores : {4u, 16u, 64u}) {
    u64 raw_bytes = 0;
    for (const auto codec : {dbscan::Codec::kRaw, dbscan::Codec::kCompact}) {
      minispark::SparkContext ctx(bench::cluster_config(cores, seed));
      dbscan::SparkDbscanConfig cfg;
      cfg.params = {spec.eps, spec.minpts};
      cfg.partitions = cores;
      cfg.seed = seed;
      cfg.codec = codec;
      dbscan::SparkDbscan dbscan(ctx, cfg);
      const auto report = dbscan.run(points);
      if (codec == dbscan::Codec::kRaw) raw_bytes = report.accumulator_bytes;
      const double saved =
          raw_bytes == 0
              ? 0.0
              : 100.0 * (1.0 - static_cast<double>(report.accumulator_bytes) /
                                   static_cast<double>(raw_bytes));
      table.add_row({TablePrinter::cell(static_cast<u64>(cores)),
                     dbscan::codec_name(codec),
                     TablePrinter::cell(report.accumulator_bytes),
                     TablePrinter::cell(report.sim_collect_s, 5),
                     TablePrinter::cell(report.sim_total_s(), 3),
                     codec == dbscan::Codec::kRaw
                         ? std::string("-")
                         : TablePrinter::cell(saved, 1)});
    }
  }
  bench::emit(table,
              "Serialization ablation (" + spec.name + ", " +
                  std::to_string(points.size()) +
                  " points): raw vs compact partial-cluster codec",
              flags.boolean("csv"));
  std::printf("Expected: compact codec cuts accumulator bytes several-fold; "
              "the collect-time saving grows with partition count.\n");
  return 0;
}
