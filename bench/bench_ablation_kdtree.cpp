// kd-tree tuning ablation — the paper's future work: "Future research will
// be conducted to improve search efficiency of kd-tree which has an
// important impact on the performance of our algorithm."
//
// Measures the two easily-tunable axes on the full pipeline:
//   * leaf size (bucket threshold): small leaves -> deeper descent (more
//     node visits), large leaves -> more distance evaluations per leaf;
//   * index structure: kd-tree vs naive scan in the executor kernel, at the
//     paper's d=10 (build cost vs query savings, Section V.B).
#include "bench_common.hpp"

#include "core/local_dbscan.hpp"
#include "spatial/brute_force.hpp"

using namespace sdb;

int main(int argc, char** argv) {
  Flags flags;
  bench::add_common_flags(flags);
  flags.add_string("dataset", "r100k", "Table I preset");
  flags.add_i64("partitions", 8, "partitions for the kernel runs");
  flags.parse(argc, argv);
  const u64 seed = static_cast<u64>(flags.i64_flag("seed"));
  const auto partitions = static_cast<u32>(flags.i64_flag("partitions"));
  const auto spec = *synth::find_preset(flags.string("dataset"));
  const double scale = bench::resolve_scale(flags, spec.name);
  const PointSet points = synth::generate(spec, seed, scale);
  const dbscan::DbscanParams params{spec.eps, spec.minpts};
  const minispark::CostModel cost;
  const auto partitioning = dbscan::make_partitioning(
      dbscan::PartitionerKind::kBlock, points, partitions, seed);

  // Run the executor kernel over every partition with a given index and
  // report the summed simulated work plus the build cost.
  auto kernel_work = [&](const SpatialIndex& index) {
    dbscan::LocalDbscanConfig cfg;
    cfg.params = params;
    WorkCounters wc;
    {
      ScopedCounters scope(&wc);
      for (u32 p = 0; p < partitions; ++p) {
        dbscan::local_dbscan(points, index, partitioning,
                             static_cast<PartitionId>(p), cfg);
      }
    }
    return wc;
  };

  {
    TablePrinter table({"leaf size", "build wall (ms)", "tree nodes",
                        "distance evals", "kernel (s)"});
    for (const int leaf : {2, 8, 16, 64, 256}) {
      Stopwatch build_wall;
      const KdTree tree(points, leaf);
      const double build_ms = build_wall.millis();
      const WorkCounters wc = kernel_work(tree);
      table.add_row({TablePrinter::cell(static_cast<i64>(leaf)),
                     TablePrinter::cell(build_ms, 1),
                     TablePrinter::cell(wc.tree_nodes),
                     TablePrinter::cell(wc.distance_evals),
                     TablePrinter::cell(cost.compute_seconds(wc), 3)});
    }
    bench::emit(table,
                "kd-tree leaf-size ablation (" + spec.name + ", " +
                    std::to_string(points.size()) + " points, d=10)",
                flags.boolean("csv"));
  }

  {
    TablePrinter table({"index", "distance evals", "kernel (s)"});
    const KdTree tree(points, 16);
    const BruteForceIndex brute(points);
    for (const SpatialIndex* index :
         {static_cast<const SpatialIndex*>(&tree),
          static_cast<const SpatialIndex*>(&brute)}) {
      const WorkCounters wc = kernel_work(*index);
      table.add_row({index->name(), TablePrinter::cell(wc.distance_evals),
                     TablePrinter::cell(cost.compute_seconds(wc), 3)});
    }
    bench::emit(table,
                "index ablation on the executor kernel (Section V.B's "
                "O(n^2) -> O(n log n) claim, measured end to end)",
                flags.boolean("csv"));
  }
  return 0;
}
