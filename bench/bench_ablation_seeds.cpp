// Ablation bench — the design choices DESIGN.md calls out:
//   1. SEED strategy: paper's one-per-partition vs complete all-foreign
//      (seed volume, accumulator bytes, merge time, result fidelity).
//   2. Merge strategy: Algorithm 4 single pass vs union-find
//      (cluster-count deviation from sequential).
//   3. Partitioner: block (paper) vs random vs grid vs kd-split — the
//      paper's stated future work ("partition the input data points based
//      on the neighborhood relationship") — measuring partial-cluster
//      fragmentation and executor balance.
//   4. Pruning budget + small-cluster filter (the r1m approximations):
//      time saved vs Rand-index cost.
#include "bench_common.hpp"

#include "core/quality.hpp"

using namespace sdb;

namespace {

dbscan::SparkDbscanReport run_once(const PointSet& points,
                                   const synth::DatasetSpec& spec, u32 cores,
                                   u64 seed, dbscan::SeedStrategy seeds,
                                   dbscan::MergeStrategy merge,
                                   dbscan::PartitionerKind partitioner,
                                   const QueryBudget& budget = {},
                                   u64 min_pc = 0) {
  minispark::SparkContext ctx(bench::cluster_config(cores, seed));
  dbscan::SparkDbscanConfig cfg;
  cfg.params = {spec.eps, spec.minpts};
  cfg.partitions = cores;
  cfg.seed = seed;
  cfg.seed_strategy = seeds;
  cfg.merge_strategy = merge;
  cfg.partitioner = partitioner;
  cfg.budget = budget;
  cfg.min_partial_cluster_size = min_pc;
  dbscan::SparkDbscan dbscan(ctx, cfg);
  return dbscan.run(points);
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  bench::add_common_flags(flags);
  flags.add_string("dataset", "c100k", "Table I preset to ablate on");
  flags.add_i64("cores", 16, "cores / partitions");
  flags.parse(argc, argv);
  const u64 seed = static_cast<u64>(flags.i64_flag("seed"));
  const auto cores = static_cast<u32>(flags.i64_flag("cores"));
  const auto spec = *synth::find_preset(flags.string("dataset"));
  const double scale = bench::resolve_scale(flags, spec.name);
  const PointSet points = synth::generate(spec, seed, scale);
  const dbscan::DbscanParams params{spec.eps, spec.minpts};
  const bool csv = flags.boolean("csv");

  const minispark::CostModel cost;
  const auto baseline = bench::sequential_baseline(points, params, cost);

  // --- 1+2: seed strategy x merge strategy ---
  {
    TablePrinter table({"seeds", "merge", "clusters", "acc bytes",
                        "merge (s)", "total (s)", "Rand vs seq"});
    for (const auto seeds : {dbscan::SeedStrategy::kOnePerPartition,
                             dbscan::SeedStrategy::kAllForeign}) {
      for (const auto merge : {dbscan::MergeStrategy::kPaperSinglePass,
                               dbscan::MergeStrategy::kUnionFind}) {
        const auto report = run_once(points, spec, cores, seed, seeds, merge,
                                     dbscan::PartitionerKind::kBlock);
        table.add_row(
            {dbscan::seed_strategy_name(seeds),
             dbscan::merge_strategy_name(merge),
             TablePrinter::cell(report.clustering.num_clusters),
             TablePrinter::cell(report.accumulator_bytes),
             TablePrinter::cell(report.sim_merge_s, 4),
             TablePrinter::cell(report.sim_total_s(), 3),
             TablePrinter::cell(
                 dbscan::rand_index(baseline.clustering, report.clustering),
                 5)});
      }
    }
    bench::emit(table,
                "Ablation 1/2: SEED strategy x merge strategy (" + spec.name +
                    ", " + std::to_string(cores) + " cores; sequential finds " +
                    std::to_string(baseline.clustering.num_clusters) +
                    " clusters)",
                csv);
  }

  // --- 3: partitioner (the paper's future work) ---
  {
    TablePrinter table({"partitioner", "partial clusters", "seeds placed",
                        "exec (s)", "driver (s)", "total (s)"});
    for (const auto partitioner :
         {dbscan::PartitionerKind::kBlock, dbscan::PartitionerKind::kRandom,
          dbscan::PartitionerKind::kGrid, dbscan::PartitionerKind::kKdSplit}) {
      const auto report =
          run_once(points, spec, cores, seed, dbscan::SeedStrategy::kAllForeign,
                   dbscan::MergeStrategy::kUnionFind, partitioner);
      table.add_row({dbscan::partitioner_name(partitioner),
                     TablePrinter::cell(report.partial_clusters),
                     TablePrinter::cell(report.merge_stats.seeds_examined),
                     TablePrinter::cell(report.sim_executor_s, 3),
                     TablePrinter::cell(report.sim_driver_s(), 3),
                     TablePrinter::cell(report.sim_total_s(), 3)});
    }
    bench::emit(table,
                "Ablation 3: partitioner (paper future work; spatial "
                "partitioners cut fragmentation and seed volume)",
                csv);
  }

  // --- 4: pruning budget + small-cluster filter (r1m approximations) ---
  {
    TablePrinter table({"max neighbors", "min pc size", "clusters",
                        "exec (s)", "total (s)", "Rand vs seq"});
    struct Case {
      u64 max_neighbors;
      u64 min_pc;
    };
    for (const auto& c :
         {Case{0, 0}, Case{128, 0}, Case{64, 0}, Case{64, 4}, Case{16, 4}}) {
      QueryBudget budget;
      budget.max_neighbors = c.max_neighbors;
      const auto report =
          run_once(points, spec, cores, seed, dbscan::SeedStrategy::kAllForeign,
                   dbscan::MergeStrategy::kUnionFind,
                   dbscan::PartitionerKind::kBlock, budget, c.min_pc);
      table.add_row(
          {TablePrinter::cell(c.max_neighbors),
           TablePrinter::cell(c.min_pc),
           TablePrinter::cell(report.clustering.num_clusters),
           TablePrinter::cell(report.sim_executor_s, 3),
           TablePrinter::cell(report.sim_total_s(), 3),
           TablePrinter::cell(
               dbscan::rand_index(baseline.clustering, report.clustering), 5)});
    }
    bench::emit(table,
                "Ablation 4: pruning budget + small-cluster filter (the r1m "
                "approximations; time saved vs accuracy cost)",
                csv);
  }
  return 0;
}
