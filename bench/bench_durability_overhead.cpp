// What does crash consistency cost when nothing crashes?
//
// Durability is opt-in (--checkpoint-dir / wal_dir), so the interesting
// number is the overhead of turning it on during a healthy run:
//
//   job checkpoint — median wall time of the Spark and MapReduce DBSCAN
//                    pipelines with checkpointing off vs on (each repeat
//                    uses a fresh checkpoint dir, so every partition record
//                    is staged, fsync'd by the filesystem's own policy, and
//                    renamed);
//   registry WAL   — ns per ModelRegistry::insert with the write-ahead log
//                    off vs on (append + flush per mutation, publish marker
//                    every `publish_every`);
//   recovery       — wall time to reopen a registry over a WAL of N
//                    committed mutations (replay cost), and after compact()
//                    (snapshot-load cost) — the two restart paths.
//
// The checkpoint path adds one small file write per partition to a pipeline
// that already ships the same blob through the accumulator, so the expected
// overhead is a few percent; the WAL path adds a flushed append per
// mutation, which is the textbook durability tax.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include <unistd.h>

#include "core/mr_dbscan.hpp"
#include "core/spark_dbscan.hpp"
#include "serve/model_registry.hpp"
#include "synth/generators.hpp"
#include "util/flags.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

using namespace sdb;
using namespace sdb::dbscan;

namespace {

namespace fs = std::filesystem;

double median(std::vector<double> xs) {
  std::sort(xs.begin(), xs.end());
  return xs[xs.size() / 2];
}

fs::path scratch_root() {
  return fs::temp_directory_path() /
         ("sdb_bench_durability_" + std::to_string(::getpid()));
}

double spark_median_wall_s(const PointSet& ps, u32 repeats,
                           bool checkpointed) {
  std::vector<double> walls;
  for (u32 r = 0; r < repeats; ++r) {
    const fs::path dir = scratch_root() / ("spark_" + std::to_string(r));
    minispark::ClusterConfig ccfg;
    ccfg.executors = 4;
    ccfg.straggler.fraction = 0.0;
    minispark::SparkContext ctx(ccfg);
    SparkDbscanConfig cfg;
    cfg.params = {0.8, 5};
    cfg.partitions = 8;
    if (checkpointed) cfg.checkpoint_dir = dir.string();
    SparkDbscan dbscan(ctx, cfg);
    Stopwatch sw;
    const auto report = dbscan.run(ps);
    walls.push_back(sw.seconds());
    SDB_CHECK(report.clustering.num_clusters > 0, "pipeline produced nothing");
    fs::remove_all(dir);
  }
  return median(std::move(walls));
}

double mr_median_wall_s(const PointSet& ps, u32 repeats, bool checkpointed) {
  std::vector<double> walls;
  for (u32 r = 0; r < repeats; ++r) {
    const fs::path dir = scratch_root() / ("mr_" + std::to_string(r));
    MRDbscanConfig cfg;
    cfg.params = {0.8, 5};
    cfg.partitions = 8;
    cfg.mr.work_dir = (dir / "work").string();
    if (checkpointed) cfg.checkpoint_dir = (dir / "ckpt").string();
    Stopwatch sw;
    const auto report = mr_dbscan(ps, cfg);
    walls.push_back(sw.seconds());
    SDB_CHECK(report.clustering.num_clusters > 0, "pipeline produced nothing");
    fs::remove_all(dir);
  }
  return median(std::move(walls));
}

double registry_insert_ns(u64 inserts, bool durable, const fs::path& dir) {
  serve::ModelRegistry::Config cfg;
  cfg.params = {1.5, 3};
  cfg.publish_every = 64;
  if (durable) cfg.wal_dir = dir.string();
  serve::ModelRegistry registry(cfg, 2);
  Rng rng(11);
  Stopwatch sw;
  for (u64 i = 0; i < inserts; ++i) {
    const double coords[2] = {rng.uniform(0.0, 100.0),
                              rng.uniform(0.0, 100.0)};
    registry.insert(coords);
  }
  return sw.seconds() / static_cast<double>(inserts) * 1e9;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  flags.add_i64("n", 4000, "points in the pipeline dataset");
  flags.add_i64("repeats", 7, "pipeline repetitions per state (median)");
  flags.add_i64("inserts", 3000, "registry mutations for the WAL micro");
  flags.parse(argc, argv);

  fs::remove_all(scratch_root());
  fs::create_directories(scratch_root());

  Rng rng(7);
  synth::GaussianMixtureConfig gcfg;
  gcfg.n = flags.i64_flag("n");
  gcfg.dim = 2;
  gcfg.clusters = 5;
  gcfg.sigma = 0.5;
  gcfg.noise_fraction = 0.05;
  gcfg.box_side = 80.0;
  const PointSet ps = synth::gaussian_clusters(gcfg, rng);
  const u32 repeats = static_cast<u32>(flags.i64_flag("repeats"));

  std::printf("job checkpoint (n=%lld, 8 partitions, median of %u):\n",
              static_cast<long long>(gcfg.n), repeats);
  const double spark_off = spark_median_wall_s(ps, repeats, false);
  const double spark_on = spark_median_wall_s(ps, repeats, true);
  std::printf("  spark  off %9.4f s   on %9.4f s   (%+.2f%%)\n", spark_off,
              spark_on, (spark_on - spark_off) / spark_off * 100.0);
  const double mr_off = mr_median_wall_s(ps, repeats, false);
  const double mr_on = mr_median_wall_s(ps, repeats, true);
  std::printf("  mr     off %9.4f s   on %9.4f s   (%+.2f%%)\n", mr_off,
              mr_on, (mr_on - mr_off) / mr_off * 100.0);

  const u64 inserts = static_cast<u64>(flags.i64_flag("inserts"));
  const fs::path wal_dir = scratch_root() / "wal";
  std::printf("\nregistry WAL (%llu inserts, publish_every=64):\n",
              static_cast<unsigned long long>(inserts));
  const double mem_ns = registry_insert_ns(inserts, false, wal_dir);
  const double wal_ns = registry_insert_ns(inserts, true, wal_dir);
  std::printf("  in-memory  %9.1f ns/insert\n", mem_ns);
  std::printf("  with WAL   %9.1f ns/insert  (%.2fx)\n", wal_ns,
              wal_ns / mem_ns);

  // Restart paths: replay the full log, then compact and reload via the
  // snapshot — the log-length-proportional vs state-proportional recovery.
  {
    serve::ModelRegistry::Config cfg;
    cfg.params = {1.5, 3};
    cfg.publish_every = 64;
    cfg.wal_dir = wal_dir.string();
    Stopwatch replay;
    serve::ModelRegistry recovered(cfg, 2);
    const double replay_s = replay.seconds();
    std::printf("\nrecovery (same WAL dir):\n");
    std::printf("  log replay      %9.4f s  (%llu records)\n", replay_s,
                static_cast<unsigned long long>(recovered.wal_replayed()));
    recovered.compact();
    Stopwatch snap;
    serve::ModelRegistry from_snapshot(cfg, 2);
    std::printf("  snapshot load   %9.4f s  (%llu records replayed)\n",
                snap.seconds(),
                static_cast<unsigned long long>(from_snapshot.wal_replayed()));
  }

  fs::remove_all(scratch_root());
  std::printf(
      "\nacceptance: healthy-run checkpoint overhead stays in the low single\n"
      "digits %%; the WAL tax is per-mutation and bounded by compact().\n");
  return 0;
}
