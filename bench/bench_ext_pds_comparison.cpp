// Extension — head-to-head with the paper's accuracy comparator:
// PDSDBSCAN-style disjoint-set parallel DBSCAN (Patwary et al., SC'12)
// vs the paper's SEED/merge design, on identical data and partitions.
//
// The paper only uses [15] to validate accuracy ("our results match them").
// This bench also compares the *designs*: communication volume (cross-
// partition union pairs vs SEED counts + partial-cluster bytes), driver/
// merge work, and executor-phase makespan on the simulated clock.
#include "bench_common.hpp"

#include "core/pds_dbscan.hpp"
#include "core/quality.hpp"

using namespace sdb;

int main(int argc, char** argv) {
  Flags flags;
  bench::add_common_flags(flags);
  flags.add_string("dataset", "r100k", "Table I preset");
  flags.parse(argc, argv);
  const u64 seed = static_cast<u64>(flags.i64_flag("seed"));
  const auto spec = *synth::find_preset(flags.string("dataset"));
  const double scale = bench::resolve_scale(flags, spec.name);
  const PointSet points = synth::generate(spec, seed, scale);
  const dbscan::DbscanParams params{spec.eps, spec.minpts};
  const minispark::CostModel cost;
  const KdTree tree(points);

  TablePrinter table({"cores", "algo", "exec (s)", "merge (s)",
                      "comm (units)", "clusters", "Rand agreement"});
  dbscan::Clustering reference;  // SEED result at the smallest core count
  for (const u32 cores : {4u, 16u, 64u}) {
    // --- the paper's SEED design ---
    minispark::SparkContext ctx(bench::cluster_config(cores, seed));
    dbscan::SparkDbscanConfig scfg;
    scfg.params = params;
    scfg.partitions = cores;
    scfg.seed = seed;
    dbscan::SparkDbscan spark(ctx, scfg);
    const auto seed_report = spark.run(points);
    if (reference.labels.empty()) reference = seed_report.clustering;

    // --- PDSDBSCAN ---
    dbscan::PdsDbscanConfig pcfg;
    pcfg.params = params;
    pcfg.partitions = cores;
    pcfg.seed = seed;
    const auto pds = dbscan::pds_dbscan(points, tree, pcfg);
    std::vector<double> durations;
    durations.reserve(pds.local_phase.size());
    for (const auto& wc : pds.local_phase) {
      durations.push_back(cost.compute_seconds(wc));
    }
    const double pds_exec =
        minispark::list_schedule_makespan(durations, cores);
    const double pds_merge = cost.compute_seconds(pds.merge_phase);

    table.add_row(
        {TablePrinter::cell(static_cast<u64>(cores)), "seed-merge (paper)",
         TablePrinter::cell(seed_report.sim_executor_s, 3),
         TablePrinter::cell(seed_report.sim_merge_s, 4),
         TablePrinter::cell(seed_report.merge_stats.seeds_examined),
         TablePrinter::cell(seed_report.clustering.num_clusters),
         TablePrinter::cell(
             dbscan::rand_index(reference, seed_report.clustering), 5)});
    table.add_row(
        {TablePrinter::cell(static_cast<u64>(cores)), "disjoint-set (PDS)",
         TablePrinter::cell(pds_exec, 3), TablePrinter::cell(pds_merge, 4),
         TablePrinter::cell(pds.cross_unions),
         TablePrinter::cell(pds.clustering.num_clusters),
         TablePrinter::cell(dbscan::rand_index(reference, pds.clustering),
                            5)});
  }
  bench::emit(table,
              "Extension: SEED/merge (paper) vs disjoint-set (PDSDBSCAN) on " +
                  spec.name + " (" + std::to_string(points.size()) +
                  " points); comm units = seeds examined vs cross unions",
              flags.boolean("csv"));
  std::printf("Paper's accuracy claim: both algorithms agree with each other "
              "(Rand ~1). Design trade: PDS defers fewer, cheaper pairs; the "
              "SEED design ships whole partial clusters but needs no "
              "executor-side union structure.\n");
  return 0;
}
