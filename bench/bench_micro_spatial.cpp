// Micro benchmarks for the spatial indexes (Section V.B's complexity claim):
// kd-tree vs uniform grid vs naive O(n) scan, build and eps-range query, at
// the paper's d=10 and at low dimension where the grid is competitive.
#include <benchmark/benchmark.h>

#include "spatial/brute_force.hpp"
#include "spatial/grid_index.hpp"
#include "spatial/kd_tree.hpp"
#include "spatial/r_tree.hpp"
#include "synth/generators.hpp"
#include "util/rng.hpp"

namespace sdb {
namespace {

PointSet dataset(i64 n, int dim) {
  Rng rng(1234 + static_cast<u64>(dim));
  synth::UniformConfig cfg;
  cfg.n = n;
  cfg.dim = dim;
  cfg.eps = 25.0;
  cfg.target_neighbors = 15.0;
  return synth::uniform_points(cfg, rng);
}

void BM_KdTreeBuild(benchmark::State& state) {
  const PointSet ps = dataset(state.range(0), 10);
  for (auto _ : state) {
    KdTree tree(ps);
    benchmark::DoNotOptimize(tree.node_count());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_KdTreeBuild)->Arg(1000)->Arg(10000)->Arg(50000);

void BM_RTreeBuild(benchmark::State& state) {
  const PointSet ps = dataset(state.range(0), 10);
  for (auto _ : state) {
    RTree tree(ps);
    benchmark::DoNotOptimize(tree.node_count());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RTreeBuild)->Arg(1000)->Arg(10000);

void BM_GridBuild(benchmark::State& state) {
  const PointSet ps = dataset(state.range(0), 10);
  for (auto _ : state) {
    GridIndex grid(ps, 25.0);
    benchmark::DoNotOptimize(grid.cell_count());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GridBuild)->Arg(1000)->Arg(10000);

template <typename Index>
void range_query_loop(benchmark::State& state, const PointSet& ps,
                      const Index& index, double eps) {
  Rng rng(7);
  std::vector<PointId> out;
  for (auto _ : state) {
    out.clear();
    const auto q = static_cast<PointId>(rng.uniform_index(ps.size()));
    index.range_query(ps[q], eps, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_KdTreeQuery10d(benchmark::State& state) {
  const PointSet ps = dataset(state.range(0), 10);
  const KdTree tree(ps);
  range_query_loop(state, ps, tree, 25.0);
}
BENCHMARK(BM_KdTreeQuery10d)->Arg(1000)->Arg(10000)->Arg(50000);

void BM_BruteForceQuery10d(benchmark::State& state) {
  const PointSet ps = dataset(state.range(0), 10);
  const BruteForceIndex brute(ps);
  range_query_loop(state, ps, brute, 25.0);
}
BENCHMARK(BM_BruteForceQuery10d)->Arg(1000)->Arg(10000)->Arg(50000);

void BM_RTreeQuery10d(benchmark::State& state) {
  const PointSet ps = dataset(state.range(0), 10);
  const RTree tree(ps);
  range_query_loop(state, ps, tree, 25.0);
}
BENCHMARK(BM_RTreeQuery10d)->Arg(10000)->Arg(50000);

void BM_KdTreeQuery2d(benchmark::State& state) {
  const PointSet ps = dataset(state.range(0), 2);
  const KdTree tree(ps);
  range_query_loop(state, ps, tree, 25.0);
}
BENCHMARK(BM_KdTreeQuery2d)->Arg(10000);

void BM_GridQuery2d(benchmark::State& state) {
  const PointSet ps = dataset(state.range(0), 2);
  const GridIndex grid(ps, 25.0);
  range_query_loop(state, ps, grid, 25.0);
}
BENCHMARK(BM_GridQuery2d)->Arg(10000);

void BM_KdTreePrunedQuery(benchmark::State& state) {
  // The paper's "pruning branches" mode for the 1m runs.
  const PointSet ps = dataset(50000, 10);
  const KdTree tree(ps);
  QueryBudget budget;
  budget.max_neighbors = static_cast<u64>(state.range(0));
  Rng rng(9);
  std::vector<PointId> out;
  for (auto _ : state) {
    out.clear();
    const auto q = static_cast<PointId>(rng.uniform_index(ps.size()));
    tree.range_query_budgeted(ps[q], 25.0, budget, out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_KdTreePrunedQuery)->Arg(0)->Arg(64)->Arg(16);

void BM_KdTreeKnn(benchmark::State& state) {
  const PointSet ps = dataset(20000, 10);
  const KdTree tree(ps);
  Rng rng(11);
  for (auto _ : state) {
    const auto q = static_cast<PointId>(rng.uniform_index(ps.size()));
    benchmark::DoNotOptimize(tree.knn(ps[q], static_cast<size_t>(state.range(0))));
  }
}
BENCHMARK(BM_KdTreeKnn)->Arg(4)->Arg(32);

}  // namespace
}  // namespace sdb

BENCHMARK_MAIN();
