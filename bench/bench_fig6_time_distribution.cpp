// Figure 6 — time distribution between driver and executors, and the
// partial-cluster count, as the core count grows.
//
// Paper sub-figures and core sweeps:
//   (a) r10k : 1, 2, 4, 8           (driver time ~flat: dataset too small)
//   (b) r1m  : 64, 128, 256, 512    (pruning mode)
//   (c) c100k: 4, 8, 16, 32         (driver time grows with m)
//   (d) r100k: 4, 8, 16, 32         (same pattern as c100k)
// The paper's observation: more cores -> more partial clusters m -> more
// driver time (the n + K*m merge term of the Section IV.C cost model).
#include "bench_common.hpp"

using namespace sdb;

namespace {

struct Sweep {
  const char* dataset;
  std::vector<u32> cores;
};

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  bench::add_common_flags(flags);
  flags.parse(argc, argv);
  const u64 seed = static_cast<u64>(flags.i64_flag("seed"));

  const std::vector<Sweep> sweeps = {
      {"r10k", {1, 2, 4, 8}},
      {"r1m", {64, 128, 256, 512}},
      {"c100k", {4, 8, 16, 32}},
      {"r100k", {4, 8, 16, 32}},
  };

  for (const auto& sweep : sweeps) {
    const auto spec = *synth::find_preset(sweep.dataset);
    const double scale = bench::resolve_scale(flags, spec.name);
    const PointSet points = synth::generate(spec, seed, scale);

    TablePrinter table({"cores", "partial clusters", "driver (s)",
                        "executors (s)", "driver share %"});
    for (const u32 cores : sweep.cores) {
      minispark::SparkContext ctx(bench::cluster_config(cores, seed));
      dbscan::SparkDbscanConfig cfg;
      cfg.params = {spec.eps, spec.minpts};
      cfg.partitions = cores;
      cfg.seed = seed;
      bench::apply_paper_strategies(cfg);
      if (spec.name == "r1m") {
        cfg.budget.max_neighbors = 64;
        cfg.min_partial_cluster_size = 4;
      }
      dbscan::SparkDbscan dbscan(ctx, cfg);
      const auto report = dbscan.run(points);
      table.add_row(
          {TablePrinter::cell(static_cast<u64>(cores)),
           TablePrinter::cell(report.partial_clusters),
           TablePrinter::cell(report.sim_driver_s(), 3),
           TablePrinter::cell(report.sim_executor_s, 3),
           TablePrinter::cell(100.0 * report.sim_driver_s() /
                                  report.sim_total_s(),
                              1)});
    }
    bench::emit(table,
                "Figure 6 (" + std::string(sweep.dataset) + ", " +
                    std::to_string(points.size()) +
                    " points): driver vs executor time and partial clusters",
                flags.boolean("csv"));
  }
  std::printf(
      "Paper shape: partial clusters grow with cores; for the 100k datasets "
      "the driver share rises with m while for r10k it stays small/flat.\n");
  return 0;
}
