// Load harness for the serving subsystem (src/serve/).
//
// Pipeline: synthesize an n-point 2-D dataset -> batch-cluster it (seq
// engine, exact) -> build a ClusterModel snapshot -> bootstrap a
// ModelRegistry/QueryEngine -> drive open-loop synthetic query traffic and
// report wall-clock throughput, latency percentiles (p50/p99/p999), cache
// hit rate, and shed rate. Three phases:
//
//   capacity  — pure classify traffic with hot-key skew, big admission
//               queue: measures sustainable queries/sec (the acceptance
//               floor is 100k/s on a 100k-point model);
//   mixed     — classify/lookup/insert blend: exercises the writer path
//               concurrently with reads;
//   overload  — tiny admission queue + unpaced submission: demonstrates
//               backpressure (nonzero shed rate, bounded latency for the
//               admitted requests).
//
// Unlike the paper-figure benches this one runs on the real wall clock —
// it measures this host's serving capacity, not the simulated cluster.
#include <cinttypes>
#include <cstdio>

#include "core/dbscan_seq.hpp"
#include "serve/cluster_model.hpp"
#include "serve/query_engine.hpp"
#include "spatial/kd_tree.hpp"
#include "synth/generators.hpp"
#include "util/flags.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

using namespace sdb;
using namespace sdb::serve;

namespace {

struct TrafficMix {
  double classify = 1.0;
  double lookup = 0.0;
  double insert = 0.0;
};

struct PhaseResult {
  std::string name;
  double wall_s = 0.0;
  MetricsSnapshot metrics;
};

/// Open-loop generator: submits batches as fast as it can for `seconds`,
/// with `hot_fraction` of classify queries drawn from a small hot set of
/// repeated points (the skew that makes the LRU cache earn its keep).
PhaseResult run_phase(const std::string& name, QueryEngine& engine,
                      const PointSet& points, const TrafficMix& mix,
                      double seconds, size_t batch_size, double hot_fraction,
                      size_t hot_keys, u64 seed) {
  Rng rng(seed);
  // Pre-draw the hot set from real points so hot queries hit clusters.
  std::vector<std::vector<double>> hot;
  hot.reserve(hot_keys);
  for (size_t k = 0; k < hot_keys; ++k) {
    const PointId id =
        static_cast<PointId>(rng.uniform_index(points.size()));
    const auto p = points[id];
    hot.emplace_back(p.begin(), p.end());
  }

  const MetricsSnapshot before = engine.metrics();
  Stopwatch wall;
  std::vector<Request> batch;
  batch.reserve(batch_size);
  while (wall.seconds() < seconds) {
    batch.clear();
    for (size_t i = 0; i < batch_size; ++i) {
      Request req;
      const double roll = rng.uniform();
      if (roll < mix.classify) {
        req.type = RequestType::kClassify;
        if (rng.chance(hot_fraction)) {
          req.point = hot[rng.uniform_index(hot.size())];
        } else {
          const PointId id =
              static_cast<PointId>(rng.uniform_index(points.size()));
          const auto p = points[id];
          req.point.assign(p.begin(), p.end());
          req.point[0] += rng.uniform(-0.01, 0.01);  // near-data cold query
        }
      } else if (roll < mix.classify + mix.lookup) {
        req.type = RequestType::kLookup;
        req.id = static_cast<PointId>(rng.uniform_index(points.size()));
      } else {
        req.type = RequestType::kInsert;
        req.point = {rng.uniform(), rng.uniform()};
      }
      batch.push_back(std::move(req));
    }
    engine.try_submit_batch(std::move(batch));
    batch = std::vector<Request>();
    batch.reserve(batch_size);
  }
  engine.drain();

  PhaseResult result;
  result.name = name;
  result.wall_s = wall.seconds();
  // Report this phase's deltas, not cumulative engine totals.
  MetricsSnapshot after = engine.metrics();
  after.submitted -= before.submitted;
  after.accepted -= before.accepted;
  after.shed -= before.shed;
  after.completed -= before.completed;
  after.cache_hits -= before.cache_hits;
  after.cache_misses -= before.cache_misses;
  for (size_t t = 0; t < kRequestTypes; ++t) {
    after.by_type[t] -= before.by_type[t];
  }
  for (int b = 0; b < HistogramSnapshot::kBuckets; ++b) {
    after.latency.counts[b] -= before.latency.counts[b];
    after.classify_latency.counts[b] -= before.classify_latency.counts[b];
  }
  result.metrics = after;
  return result;
}

std::vector<std::string> phase_row(const PhaseResult& r) {
  const auto& m = r.metrics;
  const double qps =
      r.wall_s > 0 ? static_cast<double>(m.completed) / r.wall_s : 0.0;
  const double hit_rate =
      (m.cache_hits + m.cache_misses) > 0
          ? static_cast<double>(m.cache_hits) /
                static_cast<double>(m.cache_hits + m.cache_misses)
          : 0.0;
  return {r.name,
          TablePrinter::cell(m.completed),
          TablePrinter::cell(qps, 0),
          TablePrinter::cell(m.classify_latency.quantile_micros(0.50), 2),
          TablePrinter::cell(m.classify_latency.quantile_micros(0.99), 2),
          TablePrinter::cell(m.classify_latency.quantile_micros(0.999), 2),
          TablePrinter::cell(hit_rate, 3),
          TablePrinter::cell(m.shed_rate(), 3)};
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  flags.add_i64("points", 100'000, "model size (points)");
  flags.add_f64("eps", 0.02, "DBSCAN eps for the model build");
  flags.add_i64("minpts", 5, "DBSCAN minpts");
  flags.add_i64("threads", 2, "query engine worker threads");
  flags.add_i64("queue", 65536, "admission queue capacity (capacity/mixed)");
  flags.add_i64("batch", 256, "requests per submitted batch");
  flags.add_f64("seconds", 2.0, "wall seconds per phase");
  flags.add_f64("hot_fraction", 0.9, "fraction of classify traffic on hot keys");
  flags.add_i64("hot_keys", 64, "size of the hot key set");
  flags.add_f64("core_sample", 1.0,
                "core subsample fraction (DBSCAN++ serving knob)");
  flags.add_i64("seed", 42, "rng seed");
  flags.add_bool("csv", false, "also print CSV");
  flags.parse(argc, argv);

  const auto n = flags.i64_flag("points");
  const u64 seed = static_cast<u64>(flags.i64_flag("seed"));
  Rng rng(seed);

  std::printf("generating %" PRId64 " 2-D points...\n", n);
  const PointSet points = synth::blobs_2d(n, 12, 0.02, n / 20, rng);

  std::printf("batch clustering (seq engine)...\n");
  Stopwatch sw;
  const KdTree tree(points);
  const dbscan::DbscanParams params{flags.f64("eps"), flags.i64_flag("minpts")};
  const auto seq = dbscan::dbscan_sequential(points, tree, params);
  const double cluster_s = sw.restart();

  std::vector<char> core_mask(points.size(), 0);
  for (const PointId id : seq.core_points) {
    core_mask[static_cast<size_t>(id)] = 1;
  }
  ClusterModel::Options model_options;
  model_options.core_sample_fraction = flags.f64("core_sample");
  model_options.sample_seed = seed;
  const auto model = ClusterModel::build(points, seq.clustering, core_mask,
                                         params, model_options);
  const double build_s = sw.restart();
  const auto snapshot_bytes = model->save();
  std::printf(
      "model: %zu points, %" PRIu64 " clusters, %" PRIu64
      " core points (sample %.2f), snapshot %.1f MiB; cluster %.2fs build "
      "%.2fs\n",
      points.size(), model->num_clusters(), model->core_count(),
      flags.f64("core_sample"),
      static_cast<double>(snapshot_bytes.size()) / (1024.0 * 1024.0),
      cluster_s, build_s);

  // Serve through a registry so the mixed phase's inserts mutate a live
  // clustering; bootstrap feeds the points through IncrementalDbscan (exact
  // DBSCAN semantics, so the registry's snapshot matches the batch model up
  // to border assignment).
  ModelRegistry::Config reg_cfg;
  reg_cfg.params = params;
  reg_cfg.publish_every = 4096;  // insert traffic republishes at this cadence
  reg_cfg.model_options = model_options;
  ModelRegistry registry(reg_cfg, points.dim());
  std::printf("bootstrapping registry (incremental re-cluster)...\n");
  sw.restart();
  registry.bootstrap(points);
  std::printf("bootstrap took %.2fs\n", sw.seconds());
  std::printf("registry ready: %zu active points, epoch %" PRIu64 "\n",
              registry.active_points(), registry.epoch());

  QueryEngine::Config engine_cfg;
  engine_cfg.threads = static_cast<unsigned>(flags.i64_flag("threads"));
  engine_cfg.queue_capacity = static_cast<size_t>(flags.i64_flag("queue"));
  const auto batch = static_cast<size_t>(flags.i64_flag("batch"));
  const double secs = flags.f64("seconds");
  const double hot = flags.f64("hot_fraction");
  const auto hot_keys = static_cast<size_t>(flags.i64_flag("hot_keys"));

  TablePrinter table({"phase", "completed", "qps", "p50us", "p99us", "p999us",
                      "cache_hit", "shed_rate"});

  {
    QueryEngine engine(registry, engine_cfg);
    table.add_row(phase_row(run_phase("capacity", engine, points,
                                      TrafficMix{1.0, 0.0, 0.0}, secs, batch,
                                      hot, hot_keys, seed + 1)));
  }
  {
    QueryEngine engine(registry, engine_cfg);
    table.add_row(phase_row(run_phase("mixed", engine, points,
                                      TrafficMix{0.90, 0.05, 0.05}, secs,
                                      batch, hot, hot_keys, seed + 2)));
  }
  {
    // Deliberate overload: admission queue far below what the generator
    // produces -> the engine must shed (nonzero shed rate) while admitted
    // requests keep bounded latency.
    QueryEngine::Config overload_cfg = engine_cfg;
    overload_cfg.queue_capacity = 512;
    QueryEngine engine(registry, overload_cfg);
    table.add_row(phase_row(run_phase("overload", engine, points,
                                      TrafficMix{1.0, 0.0, 0.0}, secs, batch,
                                      hot, hot_keys, seed + 3)));
  }

  table.print("serve load (wall clock)");
  if (flags.boolean("csv")) std::fputs(table.to_csv().c_str(), stdout);
  std::printf("\n");
  return 0;
}
