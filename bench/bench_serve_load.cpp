// Load harness for the serving subsystem (src/serve/).
//
// Pipeline: synthesize an n-point 2-D dataset -> batch-cluster it (seq
// engine, exact) -> build a ClusterModel snapshot -> bootstrap a
// ModelRegistry/QueryEngine -> drive open-loop synthetic query traffic and
// report wall-clock throughput, latency percentiles (p50/p99/p999), cache
// hit rate, and shed rate. Three phases:
//
//   capacity  — pure classify traffic with hot-key skew, big admission
//               queue: measures sustainable queries/sec (the acceptance
//               floor is 100k/s on a 100k-point model);
//   mixed     — classify/lookup/insert blend: exercises the writer path
//               concurrently with reads;
//   overload  — tiny admission queue + unpaced submission: demonstrates
//               backpressure (nonzero shed rate, bounded latency for the
//               admitted requests).
//
// A fourth phase exercises the REPLICATED tier (src/replica/): a
// ShardedCluster of `--shards` consistent-hash shards × `--replicas`
// WAL-shipped replicas each, with `--readers` threads classifying
// concurrently while the driver thread writes, pumps replication, and —
// at half-time — SIGKILLs shard 0's primary. It reports aggregate QPS,
// latency percentiles overall AND during the failover window, the window
// length itself, staleness redirects, and (the acceptance gate) that no
// committed epoch was lost across the promotion. Results land in
// machine-readable JSON (--out, schema in README "Serve topology bench")
// so future PRs diff against the committed BENCH_serve_topology.json.
//
// Unlike the paper-figure benches this one runs on the real wall clock —
// it measures this host's serving capacity, not the simulated cluster.
// --smoke shrinks every phase to seconds-scale for the `perf` ctest label.
#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <thread>

#include "core/dbscan_seq.hpp"
#include "replica/sharded_cluster.hpp"
#include "serve/cluster_model.hpp"
#include "serve/latency_histogram.hpp"
#include "serve/query_engine.hpp"
#include "spatial/kd_tree.hpp"
#include "synth/generators.hpp"
#include "util/flags.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

using namespace sdb;
using namespace sdb::serve;

namespace {

struct TrafficMix {
  double classify = 1.0;
  double lookup = 0.0;
  double insert = 0.0;
};

struct PhaseResult {
  std::string name;
  double wall_s = 0.0;
  MetricsSnapshot metrics;
};

/// Open-loop generator: submits batches as fast as it can for `seconds`,
/// with `hot_fraction` of classify queries drawn from a small hot set of
/// repeated points (the skew that makes the LRU cache earn its keep).
PhaseResult run_phase(const std::string& name, QueryEngine& engine,
                      const PointSet& points, const TrafficMix& mix,
                      double seconds, size_t batch_size, double hot_fraction,
                      size_t hot_keys, u64 seed) {
  Rng rng(seed);
  // Pre-draw the hot set from real points so hot queries hit clusters.
  std::vector<std::vector<double>> hot;
  hot.reserve(hot_keys);
  for (size_t k = 0; k < hot_keys; ++k) {
    const PointId id =
        static_cast<PointId>(rng.uniform_index(points.size()));
    const auto p = points[id];
    hot.emplace_back(p.begin(), p.end());
  }

  const MetricsSnapshot before = engine.metrics();
  Stopwatch wall;
  std::vector<Request> batch;
  batch.reserve(batch_size);
  while (wall.seconds() < seconds) {
    batch.clear();
    for (size_t i = 0; i < batch_size; ++i) {
      Request req;
      const double roll = rng.uniform();
      if (roll < mix.classify) {
        req.type = RequestType::kClassify;
        if (rng.chance(hot_fraction)) {
          req.point = hot[rng.uniform_index(hot.size())];
        } else {
          const PointId id =
              static_cast<PointId>(rng.uniform_index(points.size()));
          const auto p = points[id];
          req.point.assign(p.begin(), p.end());
          req.point[0] += rng.uniform(-0.01, 0.01);  // near-data cold query
        }
      } else if (roll < mix.classify + mix.lookup) {
        req.type = RequestType::kLookup;
        req.id = static_cast<PointId>(rng.uniform_index(points.size()));
      } else {
        req.type = RequestType::kInsert;
        req.point = {rng.uniform(), rng.uniform()};
      }
      batch.push_back(std::move(req));
    }
    engine.try_submit_batch(std::move(batch));
    batch = std::vector<Request>();
    batch.reserve(batch_size);
  }
  engine.drain();

  PhaseResult result;
  result.name = name;
  result.wall_s = wall.seconds();
  // Report this phase's deltas, not cumulative engine totals.
  MetricsSnapshot after = engine.metrics();
  after.submitted -= before.submitted;
  after.accepted -= before.accepted;
  after.shed -= before.shed;
  after.completed -= before.completed;
  after.invalid -= before.invalid;
  after.degraded -= before.degraded;
  after.degraded_model_reads -= before.degraded_model_reads;
  after.cache_hits -= before.cache_hits;
  after.cache_misses -= before.cache_misses;
  for (size_t t = 0; t < kRequestTypes; ++t) {
    after.by_type[t] -= before.by_type[t];
  }
  for (int b = 0; b < HistogramSnapshot::kBuckets; ++b) {
    after.latency.counts[b] -= before.latency.counts[b];
    after.classify_latency.counts[b] -= before.classify_latency.counts[b];
  }
  result.metrics = after;
  return result;
}

std::vector<std::string> phase_row(const PhaseResult& r) {
  const auto& m = r.metrics;
  const double qps =
      r.wall_s > 0 ? static_cast<double>(m.completed) / r.wall_s : 0.0;
  const double hit_rate =
      (m.cache_hits + m.cache_misses) > 0
          ? static_cast<double>(m.cache_hits) /
                static_cast<double>(m.cache_hits + m.cache_misses)
          : 0.0;
  return {r.name,
          TablePrinter::cell(m.completed),
          TablePrinter::cell(qps, 0),
          TablePrinter::cell(m.classify_latency.quantile_micros(0.50), 2),
          TablePrinter::cell(m.classify_latency.quantile_micros(0.99), 2),
          TablePrinter::cell(m.classify_latency.quantile_micros(0.999), 2),
          TablePrinter::cell(hit_rate, 3),
          TablePrinter::cell(m.shed_rate(), 3)};
}

// ---------------------------------------------------------------------------
// Replicated / sharded topology phase.

struct TopologyResult {
  size_t shards = 0;
  size_t replicas = 0;
  size_t readers = 0;
  size_t points = 0;
  double wall_s = 0.0;
  u64 queries = 0;
  u64 redirected_reads = 0;  ///< ClassifyResult.redirected, reader-counted
  HistogramSnapshot overall;
  HistogramSnapshot during_failover;
  u64 queries_during_failover = 0;
  double failover_window_ms = 0.0;
  u64 failovers = 0;
  u64 stale_redirects = 0;  ///< set-side counter (includes dead-node reads)
  u64 inserts = 0;
  u64 rejected_writes = 0;
  u64 committed_before_kill = 0;
  u64 lost_committed_epochs = 0;  ///< the acceptance gate: must be 0

  [[nodiscard]] double qps() const {
    return wall_s > 0 ? static_cast<double>(queries) / wall_s : 0.0;
  }
};

/// Drive `readers` classify threads against a sharded, replicated cluster
/// while this thread writes + pumps replication; SIGKILL shard 0's primary
/// at half-time and measure straight through the failover window.
TopologyResult run_topology(const PointSet& points,
                            const dbscan::DbscanParams& params, size_t shards,
                            size_t replicas, size_t readers, double seconds,
                            u64 seed) {
  using replica::ShardedCluster;
  ShardedCluster::Options opts;
  opts.shards = shards;
  opts.replica.replicas = replicas;
  opts.replica.staleness_bound = 8;
  opts.replica.heartbeat_timeout = 3;
  opts.replica.ack_replicas = 1;
  opts.replica.batch_records = 256;
  opts.replica.pipeline_batches = 4;
  opts.replica.registry.params = params;
  opts.replica.registry.publish_every = 0;  // the driver publishes explicitly
  ShardedCluster cluster(opts, points.dim());

  std::printf("topology: bootstrapping %zu points across %zu shards x %zu "
              "replicas...\n",
              points.size(), shards, replicas);
  Stopwatch boot;
  cluster.bootstrap(points);
  // Compact each shard so followers bootstrap via ONE snapshot install
  // instead of replaying the whole insert log record-by-record.
  for (size_t s = 0; s < cluster.shards(); ++s) (void)cluster.shard(s).compact();
  const auto all_committed = [&] {
    for (size_t s = 0; s < cluster.shards(); ++s) {
      const replica::ReplicaSet& rs = cluster.shard(s);
      const auto primary = rs.node_registry(rs.primary_index());
      if (rs.committed_epoch() < primary->epoch()) return false;
    }
    return true;
  };
  u64 warmup_rounds = 0;
  while (!all_committed()) {
    cluster.pump_all();
    SDB_CHECK(++warmup_rounds < 1'000'000, "replication warmup did not converge");
  }
  std::printf("topology: warm (bootstrap+replicate %.2fs, %" PRIu64
              " pump rounds)\n",
              boot.seconds(), warmup_rounds);

  TopologyResult out;
  out.shards = shards;
  out.replicas = replicas;
  out.readers = readers;
  out.points = points.size();

  struct ReaderSlot {
    serve::LatencyHistogram overall;
    serve::LatencyHistogram during;
    u64 queries = 0;
    u64 queries_during = 0;
    u64 redirected = 0;
  };
  std::atomic<bool> stop{false};
  std::atomic<bool> failover_window{false};
  std::vector<ReaderSlot> slots(readers);
  std::vector<std::thread> threads;
  threads.reserve(readers);
  for (size_t t = 0; t < readers; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(seed + 100 + t);
      std::vector<double> q(static_cast<size_t>(points.dim()));
      ReaderSlot& slot = slots[t];
      while (!stop.load(std::memory_order_relaxed)) {
        const auto p = points[static_cast<PointId>(
            rng.uniform_index(points.size()))];
        q.assign(p.begin(), p.end());
        q[0] += rng.uniform(-0.01, 0.01);  // near-data cold query
        const auto t0 = std::chrono::steady_clock::now();
        const auto r = cluster.classify(q, t);
        const u64 nanos = static_cast<u64>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - t0)
                .count());
        slot.overall.record_nanos(nanos);
        ++slot.queries;
        slot.redirected += r.redirected ? 1 : 0;
        if (failover_window.load(std::memory_order_relaxed)) {
          slot.during.record_nanos(nanos);
          ++slot.queries_during;
        }
      }
    });
  }

  // Driver loop: write + publish + pump; ticks on a real-time cadence so the
  // failover window spans milliseconds of reader traffic rather than a
  // handful of driver iterations.
  constexpr double kTickMs = 2.0;
  Rng rng(seed + 1);
  Stopwatch wall;
  Stopwatch tick_timer;
  Stopwatch window_timer;
  bool killed = false;
  u64 iter = 0;
  std::vector<double> c(static_cast<size_t>(points.dim()));
  while (wall.seconds() < seconds) {
    for (int k = 0; k < 8; ++k) {
      for (double& v : c) v = rng.uniform();
      if (cluster.insert(c).has_value()) {
        ++out.inserts;
      } else {
        ++out.rejected_writes;
      }
    }
    if (++iter % 4 == 0) cluster.publish_all();
    cluster.pump_all();
    if (tick_timer.millis() >= kTickMs) {
      cluster.tick_all();
      tick_timer = Stopwatch();
    }
    if (!killed && wall.seconds() >= seconds * 0.5) {
      killed = true;
      out.committed_before_kill = cluster.shard(0).committed_epoch();
      failover_window.store(true, std::memory_order_relaxed);
      window_timer = Stopwatch();
      cluster.shard(0).kill_primary();
    }
    if (killed && failover_window.load(std::memory_order_relaxed) &&
        cluster.shard(0).has_live_primary()) {
      out.failover_window_ms = window_timer.millis();
      failover_window.store(false, std::memory_order_relaxed);
    }
  }
  // Finish an in-progress failover, then let every shard converge.
  u64 drain_rounds = 0;
  while (!cluster.shard(0).has_live_primary()) {
    cluster.tick_all();
    cluster.pump_all();
    SDB_CHECK(++drain_rounds < 1'000'000, "failover did not complete");
  }
  if (failover_window.load(std::memory_order_relaxed)) {
    out.failover_window_ms = window_timer.millis();
    failover_window.store(false, std::memory_order_relaxed);
  }
  while (!all_committed()) {
    cluster.pump_all();
    SDB_CHECK(++drain_rounds < 1'000'000, "post-run drain did not converge");
  }
  out.wall_s = wall.seconds();
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : threads) t.join();

  for (const ReaderSlot& slot : slots) {
    out.overall += slot.overall.snapshot();
    out.during_failover += slot.during.snapshot();
    out.queries += slot.queries;
    out.queries_during_failover += slot.queries_during;
    out.redirected_reads += slot.redirected;
  }
  for (size_t s = 0; s < cluster.shards(); ++s) {
    out.failovers += cluster.shard(s).failovers();
    out.stale_redirects += cluster.shard(s).stale_redirects();
  }
  const u64 committed_after = cluster.shard(0).committed_epoch();
  out.lost_committed_epochs = committed_after >= out.committed_before_kill
                                  ? 0
                                  : out.committed_before_kill - committed_after;
  return out;
}

void write_topology_json(const std::string& path, bool smoke, u64 seed,
                         double seconds,
                         const std::vector<PhaseResult>& phases,
                         const TopologyResult& r) {
  FILE* f = std::fopen(path.c_str(), "w");
  SDB_CHECK(f != nullptr, "cannot open bench output file");
  std::fprintf(f, "{\n  \"bench\": \"serve_topology\",\n  \"mode\": \"%s\",\n",
               smoke ? "smoke" : "full");
  // Single-node phases, with the backpressure/degradation counters the
  // streaming ladder surfaces (shed + shed_rate prove admission control
  // engaged in the overload phase; degraded_model_reads counts replies
  // answered from a DBSCAN++-subsampled snapshot).
  std::fprintf(f, "  \"phases\": [\n");
  for (size_t i = 0; i < phases.size(); ++i) {
    const PhaseResult& p = phases[i];
    const auto& m = p.metrics;
    const double qps =
        p.wall_s > 0 ? static_cast<double>(m.completed) / p.wall_s : 0.0;
    std::fprintf(
        f,
        "    {\"name\": \"%s\", \"wall_s\": %.2f, \"completed\": %llu, "
        "\"qps\": %.0f,\n"
        "     \"p50us\": %.2f, \"p99us\": %.2f, \"p999us\": %.2f,\n"
        "     \"submitted\": %llu, \"accepted\": %llu, \"shed\": %llu, "
        "\"shed_rate\": %.4f,\n"
        "     \"degraded\": %llu, \"degraded_model_reads\": %llu}%s\n",
        p.name.c_str(), p.wall_s,
        static_cast<unsigned long long>(m.completed), qps,
        m.classify_latency.quantile_micros(0.50),
        m.classify_latency.quantile_micros(0.99),
        m.classify_latency.quantile_micros(0.999),
        static_cast<unsigned long long>(m.submitted),
        static_cast<unsigned long long>(m.accepted),
        static_cast<unsigned long long>(m.shed), m.shed_rate(),
        static_cast<unsigned long long>(m.degraded),
        static_cast<unsigned long long>(m.degraded_model_reads),
        i + 1 < phases.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f,
               "  \"shards\": %zu,\n  \"replicas\": %zu,\n  \"readers\": %zu,\n"
               "  \"points\": %zu,\n  \"seconds\": %.2f,\n  \"seed\": %llu,\n",
               r.shards, r.replicas, r.readers, r.points, seconds,
               static_cast<unsigned long long>(seed));
  std::fprintf(f,
               "  \"aggregate\": {\"queries\": %llu, \"qps\": %.1f, "
               "\"p50us\": %.2f, \"p99us\": %.2f, \"p999us\": %.2f},\n",
               static_cast<unsigned long long>(r.queries), r.qps(),
               r.overall.quantile_micros(0.50), r.overall.quantile_micros(0.99),
               r.overall.quantile_micros(0.999));
  std::fprintf(f,
               "  \"failover\": {\"window_ms\": %.2f, \"failovers\": %llu, "
               "\"queries_during\": %llu, \"p999us_during\": %.2f, "
               "\"committed_before_kill\": %llu, "
               "\"lost_committed_epochs\": %llu},\n",
               r.failover_window_ms,
               static_cast<unsigned long long>(r.failovers),
               static_cast<unsigned long long>(r.queries_during_failover),
               r.during_failover.quantile_micros(0.999),
               static_cast<unsigned long long>(r.committed_before_kill),
               static_cast<unsigned long long>(r.lost_committed_epochs));
  std::fprintf(f,
               "  \"staleness\": {\"redirected_reads\": %llu, "
               "\"stale_redirects\": %llu},\n",
               static_cast<unsigned long long>(r.redirected_reads),
               static_cast<unsigned long long>(r.stale_redirects));
  std::fprintf(f, "  \"writes\": {\"inserts\": %llu, \"rejected\": %llu}\n}\n",
               static_cast<unsigned long long>(r.inserts),
               static_cast<unsigned long long>(r.rejected_writes));
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  flags.add_i64("points", 100'000, "model size (points)");
  flags.add_f64("eps", 0.02, "DBSCAN eps for the model build");
  flags.add_i64("minpts", 5, "DBSCAN minpts");
  flags.add_i64("threads", 2, "query engine worker threads");
  flags.add_i64("queue", 65536, "admission queue capacity (capacity/mixed)");
  flags.add_i64("batch", 256, "requests per submitted batch");
  flags.add_f64("seconds", 2.0, "wall seconds per phase");
  flags.add_f64("hot_fraction", 0.9, "fraction of classify traffic on hot keys");
  flags.add_i64("hot_keys", 64, "size of the hot key set");
  flags.add_f64("core_sample", 1.0,
                "core subsample fraction (DBSCAN++ serving knob)");
  flags.add_i64("seed", 42, "rng seed");
  flags.add_bool("csv", false, "also print CSV");
  flags.add_bool("smoke", false,
                 "seconds-scale run for the perf ctest label (small model, "
                 "short phases)");
  flags.add_i64("shards", 2, "consistent-hash shards (topology phase)");
  flags.add_i64("replicas", 3, "replicas per shard (topology phase)");
  flags.add_i64("readers", 4, "concurrent classify threads (topology phase)");
  flags.add_i64("topo_points", 20'000, "dataset size for the topology phase");
  flags.add_f64("topo_seconds", 4.0, "wall seconds for the topology phase");
  flags.add_string("out", "BENCH_serve_topology.json",
                   "topology-phase JSON output path");
  flags.parse(argc, argv);

  const bool smoke = flags.boolean("smoke");
  const auto n = flags.i64_flag("points") / (smoke ? 12 : 1);
  const u64 seed = static_cast<u64>(flags.i64_flag("seed"));
  Rng rng(seed);

  std::printf("generating %" PRId64 " 2-D points...\n", n);
  const PointSet points = synth::blobs_2d(n, 12, 0.02, n / 20, rng);

  std::printf("batch clustering (seq engine)...\n");
  Stopwatch sw;
  const KdTree tree(points);
  const dbscan::DbscanParams params{flags.f64("eps"), flags.i64_flag("minpts")};
  const auto seq = dbscan::dbscan_sequential(points, tree, params);
  const double cluster_s = sw.restart();

  std::vector<char> core_mask(points.size(), 0);
  for (const PointId id : seq.core_points) {
    core_mask[static_cast<size_t>(id)] = 1;
  }
  ClusterModel::Options model_options;
  model_options.core_sample_fraction = flags.f64("core_sample");
  model_options.sample_seed = seed;
  const auto model = ClusterModel::build(points, seq.clustering, core_mask,
                                         params, model_options);
  const double build_s = sw.restart();
  const auto snapshot_bytes = model->save();
  std::printf(
      "model: %zu points, %" PRIu64 " clusters, %" PRIu64
      " core points (sample %.2f), snapshot %.1f MiB; cluster %.2fs build "
      "%.2fs\n",
      points.size(), model->num_clusters(), model->core_count(),
      flags.f64("core_sample"),
      static_cast<double>(snapshot_bytes.size()) / (1024.0 * 1024.0),
      cluster_s, build_s);

  // Serve through a registry so the mixed phase's inserts mutate a live
  // clustering; bootstrap feeds the points through IncrementalDbscan (exact
  // DBSCAN semantics, so the registry's snapshot matches the batch model up
  // to border assignment).
  ModelRegistry::Config reg_cfg;
  reg_cfg.params = params;
  reg_cfg.publish_every = 4096;  // insert traffic republishes at this cadence
  reg_cfg.model_options = model_options;
  ModelRegistry registry(reg_cfg, points.dim());
  std::printf("bootstrapping registry (incremental re-cluster)...\n");
  sw.restart();
  registry.bootstrap(points);
  std::printf("bootstrap took %.2fs\n", sw.seconds());
  std::printf("registry ready: %zu active points, epoch %" PRIu64 "\n",
              registry.active_points(), registry.epoch());

  QueryEngine::Config engine_cfg;
  engine_cfg.threads = static_cast<unsigned>(flags.i64_flag("threads"));
  engine_cfg.queue_capacity = static_cast<size_t>(flags.i64_flag("queue"));
  const auto batch = static_cast<size_t>(flags.i64_flag("batch"));
  const double secs = flags.f64("seconds") / (smoke ? 5.0 : 1.0);
  const double hot = flags.f64("hot_fraction");
  const auto hot_keys = static_cast<size_t>(flags.i64_flag("hot_keys"));

  TablePrinter table({"phase", "completed", "qps", "p50us", "p99us", "p999us",
                      "cache_hit", "shed_rate"});

  std::vector<PhaseResult> phases;
  {
    QueryEngine engine(registry, engine_cfg);
    phases.push_back(run_phase("capacity", engine, points,
                               TrafficMix{1.0, 0.0, 0.0}, secs, batch, hot,
                               hot_keys, seed + 1));
  }
  {
    QueryEngine engine(registry, engine_cfg);
    phases.push_back(run_phase("mixed", engine, points,
                               TrafficMix{0.90, 0.05, 0.05}, secs, batch, hot,
                               hot_keys, seed + 2));
  }
  {
    // Deliberate overload: admission queue far below what the generator
    // produces -> the engine must shed (nonzero shed rate) while admitted
    // requests keep bounded latency.
    QueryEngine::Config overload_cfg = engine_cfg;
    overload_cfg.queue_capacity = 512;
    QueryEngine engine(registry, overload_cfg);
    phases.push_back(run_phase("overload", engine, points,
                               TrafficMix{1.0, 0.0, 0.0}, secs, batch, hot,
                               hot_keys, seed + 3));
  }
  for (const PhaseResult& p : phases) table.add_row(phase_row(p));

  table.print("serve load (wall clock)");
  if (flags.boolean("csv")) std::fputs(table.to_csv().c_str(), stdout);
  std::printf("\n");

  // --- phase 4: replicated / sharded topology with a mid-run failover ---
  const auto shards = static_cast<size_t>(flags.i64_flag("shards"));
  const auto replicas = static_cast<size_t>(flags.i64_flag("replicas"));
  const auto readers = static_cast<size_t>(flags.i64_flag("readers"));
  const auto topo_n =
      static_cast<i64>(flags.i64_flag("topo_points")) / (smoke ? 10 : 1);
  const double topo_secs = flags.f64("topo_seconds") / (smoke ? 4.0 : 1.0);
  Rng topo_rng(seed + 7);
  const PointSet topo_points =
      synth::blobs_2d(topo_n, 12, 0.02, topo_n / 20, topo_rng);
  const TopologyResult topo =
      run_topology(topo_points, params, shards, replicas, readers, topo_secs,
                   seed);

  TablePrinter topo_table({"metric", "value"});
  topo_table.add_row({"aggregate qps", TablePrinter::cell(topo.qps(), 0)});
  topo_table.add_row(
      {"p50 us", TablePrinter::cell(topo.overall.quantile_micros(0.50), 2)});
  topo_table.add_row(
      {"p99 us", TablePrinter::cell(topo.overall.quantile_micros(0.99), 2)});
  topo_table.add_row(
      {"p999 us", TablePrinter::cell(topo.overall.quantile_micros(0.999), 2)});
  topo_table.add_row(
      {"failover window ms", TablePrinter::cell(topo.failover_window_ms, 2)});
  topo_table.add_row(
      {"p999 us during failover",
       TablePrinter::cell(topo.during_failover.quantile_micros(0.999), 2)});
  topo_table.add_row(
      {"queries during failover",
       TablePrinter::cell(topo.queries_during_failover)});
  topo_table.add_row({"failovers", TablePrinter::cell(topo.failovers)});
  topo_table.add_row(
      {"stale redirects", TablePrinter::cell(topo.stale_redirects)});
  topo_table.add_row(
      {"rejected writes", TablePrinter::cell(topo.rejected_writes)});
  topo_table.add_row({"lost committed epochs",
                      TablePrinter::cell(topo.lost_committed_epochs)});
  topo_table.print("serve topology: " + std::to_string(shards) + " shards x " +
                   std::to_string(replicas) + " replicas, " +
                   std::to_string(readers) + " readers");
  if (flags.boolean("csv")) std::fputs(topo_table.to_csv().c_str(), stdout);
  std::printf("\n");
  SDB_CHECK(topo.lost_committed_epochs == 0,
            "failover lost committed epochs — replication bug");
  write_topology_json(flags.string("out"), smoke, seed, topo_secs, phases,
                      topo);
  return 0;
}
