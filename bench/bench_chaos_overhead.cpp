// Are dormant fault-injection hooks free?
//
// SDB_INJECT(site) has three states:
//   compiled out  — -DSDB_FAULT_INJECTION=OFF: the macro is the literal
//                   `false`; cost is exactly zero by construction;
//   dormant       — compiled in, no plan installed: one relaxed atomic load
//                   and a null check;
//   empty plan    — compiled in, a plan installed that names none of the
//                   sites: the load, a mutex acquisition and a map miss.
//
// Two measurements:
//   hook micro    — ns per SDB_INJECT call in a tight loop (dormant and
//                   empty-plan states);
//   pipeline      — median wall time of the full Spark DBSCAN pipeline,
//                   dormant vs empty-plan, and the relative delta. The
//                   acceptance bar is <= 1% pipeline overhead for dormant
//                   hooks (and compiled-out hooks are free by construction).
//
// Run both configurations to see the compiled-out floor:
//   cmake -B build -DSDB_FAULT_INJECTION=ON  && ./build/bench_chaos_overhead
//   cmake -B build-off -DSDB_FAULT_INJECTION=OFF && ...
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "core/spark_dbscan.hpp"
#include "fault/fault_plan.hpp"
#include "synth/generators.hpp"
#include "util/flags.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

using namespace sdb;
using namespace sdb::dbscan;

namespace {

double hook_ns_per_call(u64 iterations) {
  // volatile sink defeats dead-code elimination of the hook's result.
  volatile u64 fired = 0;
  Stopwatch sw;
  for (u64 i = 0; i < iterations; ++i) {
    if (SDB_INJECT("bench.overhead.site")) fired = fired + 1;
  }
  const double s = sw.seconds();
  (void)fired;
  return s / static_cast<double>(iterations) * 1e9;
}

double median(std::vector<double> xs) {
  std::sort(xs.begin(), xs.end());
  return xs[xs.size() / 2];
}

double pipeline_median_wall_s(const PointSet& ps, u32 repeats) {
  std::vector<double> walls;
  for (u32 r = 0; r < repeats; ++r) {
    minispark::ClusterConfig ccfg;
    ccfg.executors = 4;
    ccfg.straggler.fraction = 0.0;
    minispark::SparkContext ctx(ccfg);
    SparkDbscanConfig cfg;
    cfg.params = {0.8, 5};
    cfg.partitions = 4;
    SparkDbscan dbscan(ctx, cfg);
    Stopwatch sw;
    const auto report = dbscan.run(ps);
    walls.push_back(sw.seconds());
    SDB_CHECK(report.clustering.num_clusters > 0, "pipeline produced nothing");
  }
  return median(std::move(walls));
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  flags.add_i64("n", 4000, "points in the pipeline dataset");
  flags.add_i64("repeats", 9, "pipeline repetitions per state (median)");
  flags.add_i64("hook_iters", 20'000'000, "tight-loop SDB_INJECT calls");
  flags.parse(argc, argv);

#ifdef SDB_FAULT_INJECTION
  const char* compiled = "ON (dormant hook = relaxed atomic load)";
#else
  const char* compiled = "OFF (SDB_INJECT is the literal `false`)";
#endif
  std::printf("SDB_FAULT_INJECTION: %s\n\n", compiled);

  const u64 hook_iters = static_cast<u64>(flags.i64_flag("hook_iters"));
  std::printf("hook micro (%llu calls):\n",
              static_cast<unsigned long long>(hook_iters));
  std::printf("  dormant     %8.3f ns/call\n", hook_ns_per_call(hook_iters));
  {
    fault::ScopedFaultPlan empty("seed=1");
    std::printf("  empty plan  %8.3f ns/call\n", hook_ns_per_call(hook_iters));
  }

  Rng rng(7);
  synth::GaussianMixtureConfig gcfg;
  gcfg.n = flags.i64_flag("n");
  gcfg.dim = 2;
  gcfg.clusters = 5;
  gcfg.sigma = 0.5;
  gcfg.noise_fraction = 0.05;
  gcfg.box_side = 80.0;
  const PointSet ps = synth::gaussian_clusters(gcfg, rng);
  const u32 repeats = static_cast<u32>(flags.i64_flag("repeats"));

  const double dormant_s = pipeline_median_wall_s(ps, repeats);
  double empty_plan_s = 0.0;
  {
    fault::ScopedFaultPlan empty("seed=1");
    empty_plan_s = pipeline_median_wall_s(ps, repeats);
  }

  const double overhead_pct = (empty_plan_s - dormant_s) / dormant_s * 100.0;
  std::printf("\npipeline (n=%lld, median of %u):\n",
              static_cast<long long>(gcfg.n), repeats);
  std::printf("  dormant hooks     %9.4f s\n", dormant_s);
  std::printf("  empty plan        %9.4f s   (%+.2f%% vs dormant)\n",
              empty_plan_s, overhead_pct);
  std::printf(
      "\nacceptance: dormant hooks must cost <= 1%% pipeline wall time vs the\n"
      "compiled-out build; compare against -DSDB_FAULT_INJECTION=OFF.\n");
  return 0;
}
