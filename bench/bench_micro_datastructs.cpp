// Section III.B — the paper's data-structure argument, measured.
//
// The executor kernel needs (1) a visited/membership table with O(1)
// put/containsKey (the paper picks Java Hashtable) and (2) a frontier queue
// with O(1) add/remove (the paper picks LinkedList over ArrayList/Vector).
// These benches compare the C++ candidates on the kernel's exact access
// pattern: interleaved insert/lookup for the table; push-back/pop-front at
// BFS scale for the queue.
#include <benchmark/benchmark.h>

#include <deque>
#include <list>
#include <queue>
#include <unordered_set>

#include "util/flat_hash.hpp"
#include "util/rng.hpp"

namespace sdb {
namespace {

constexpr int kKeyRange = 100000;

std::vector<i64> workload_keys(size_t n) {
  Rng rng(77);
  std::vector<i64> keys;
  keys.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    keys.push_back(static_cast<i64>(rng.uniform_index(kKeyRange)));
  }
  return keys;
}

// --- visited/membership table candidates ---

void BM_VisitedSet_FlatIdSet(benchmark::State& state) {
  const auto keys = workload_keys(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    FlatIdSet set(keys.size());
    u64 hits = 0;
    for (const i64 k : keys) {
      if (set.contains(k)) ++hits;
      else set.insert(k);
    }
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_VisitedSet_FlatIdSet)->Arg(10000)->Arg(100000);

void BM_VisitedSet_StdUnordered(benchmark::State& state) {
  const auto keys = workload_keys(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    std::unordered_set<i64> set;
    set.reserve(keys.size());
    u64 hits = 0;
    for (const i64 k : keys) {
      if (set.contains(k)) ++hits;
      else set.insert(k);
    }
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_VisitedSet_StdUnordered)->Arg(10000)->Arg(100000);

void BM_VisitedSet_BoolArray(benchmark::State& state) {
  // The dense alternative a C++ implementation can afford when ids are
  // dense 0..n-1 (the paper's Java Hashtable argument predates this).
  const auto keys = workload_keys(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    std::vector<char> set(kKeyRange, 0);
    u64 hits = 0;
    for (const i64 k : keys) {
      if (set[static_cast<size_t>(k)]) ++hits;
      else set[static_cast<size_t>(k)] = 1;
    }
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_VisitedSet_BoolArray)->Arg(10000)->Arg(100000);

// --- frontier queue candidates (paper: LinkedList wins in Java) ---

template <typename PushPop>
void frontier_bench(benchmark::State& state, PushPop run) {
  // BFS-like pattern: bursts of pushes (neighbor lists) interleaved with
  // single pops, equal totals.
  Rng rng(99);
  std::vector<u32> burst_sizes;
  u64 total = 0;
  while (total < static_cast<u64>(state.range(0))) {
    const u32 b = 1 + static_cast<u32>(rng.uniform_index(40));
    burst_sizes.push_back(b);
    total += b;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(run(burst_sizes));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<i64>(total));
}

void BM_Frontier_Deque(benchmark::State& state) {
  frontier_bench(state, [](const std::vector<u32>& bursts) {
    std::deque<i64> q;
    i64 sum = 0;
    for (const u32 b : bursts) {
      for (u32 i = 0; i < b; ++i) q.push_back(static_cast<i64>(i));
      while (!q.empty()) {
        sum += q.front();
        q.pop_front();
        if (q.size() < 8) break;  // keep a live frontier
      }
    }
    while (!q.empty()) {
      sum += q.front();
      q.pop_front();
    }
    return sum;
  });
}
BENCHMARK(BM_Frontier_Deque)->Arg(100000);

void BM_Frontier_List(benchmark::State& state) {
  // Java's LinkedList analog: node-per-element linked list.
  frontier_bench(state, [](const std::vector<u32>& bursts) {
    std::list<i64> q;
    i64 sum = 0;
    for (const u32 b : bursts) {
      for (u32 i = 0; i < b; ++i) q.push_back(static_cast<i64>(i));
      while (!q.empty()) {
        sum += q.front();
        q.pop_front();
        if (q.size() < 8) break;
      }
    }
    while (!q.empty()) {
      sum += q.front();
      q.pop_front();
    }
    return sum;
  });
}
BENCHMARK(BM_Frontier_List)->Arg(100000);

void BM_Frontier_VectorStack(benchmark::State& state) {
  // LIFO stack: changes traversal order (DFS), allowed for DBSCAN since
  // cluster membership is order-independent for core points.
  frontier_bench(state, [](const std::vector<u32>& bursts) {
    std::vector<i64> q;
    i64 sum = 0;
    for (const u32 b : bursts) {
      for (u32 i = 0; i < b; ++i) q.push_back(static_cast<i64>(i));
      while (!q.empty()) {
        sum += q.back();
        q.pop_back();
        if (q.size() < 8) break;
      }
    }
    while (!q.empty()) {
      sum += q.back();
      q.pop_back();
    }
    return sum;
  });
}
BENCHMARK(BM_Frontier_VectorStack)->Arg(100000);

}  // namespace
}  // namespace sdb

BENCHMARK_MAIN();
