// Figure 5 — time taken by kd-tree construction vs the whole DBSCAN run.
//
// Paper: with 8 partitions, tree construction is 0.05%-0.5% of the total
// (0.5-6 per thousand), highest for the small datasets (c10k, r10k) because
// their total runtime is short. This harness prints the same per-thousand
// series for all five presets at 8 partitions.
#include "bench_common.hpp"

using namespace sdb;

int main(int argc, char** argv) {
  Flags flags;
  bench::add_common_flags(flags);
  flags.add_i64("partitions", 8, "partition count (paper: 8)");
  flags.parse(argc, argv);
  const u64 seed = static_cast<u64>(flags.i64_flag("seed"));
  const auto partitions = static_cast<u32>(flags.i64_flag("partitions"));

  TablePrinter table({"dataset", "points", "kd-tree build (s)",
                      "whole DBSCAN (s)", "fraction (1/1000)"});

  for (const auto& spec : synth::table1_presets()) {
    const double scale = bench::resolve_scale(flags, spec.name);
    const PointSet points = synth::generate(spec, seed, scale);

    minispark::SparkContext ctx(bench::cluster_config(partitions, seed));
    dbscan::SparkDbscanConfig cfg;
    cfg.params = {spec.eps, spec.minpts};
    cfg.partitions = partitions;
    cfg.seed = seed;
    bench::apply_paper_strategies(cfg);
    if (spec.name == "r1m") {
      cfg.budget.max_neighbors = 64;  // the paper's pruning mode for 1m
      cfg.min_partial_cluster_size = 4;
    }
    dbscan::SparkDbscan dbscan(ctx, cfg);
    const auto report = dbscan.run(points);

    const double fraction = 1000.0 * report.sim_tree_s / report.sim_total_s();
    table.add_row({spec.name,
                   TablePrinter::cell(static_cast<u64>(points.size())),
                   TablePrinter::cell(report.sim_tree_s, 4),
                   TablePrinter::cell(report.sim_total_s(), 3),
                   TablePrinter::cell(fraction, 2)});
  }

  bench::emit(table,
              "Figure 5: kd-tree construction time / whole DBSCAN time "
              "(8 partitions, simulated cluster clock)",
              flags.boolean("csv"));
  std::printf("Paper shape: fraction is small everywhere (<= ~6/1000) and "
              "largest for the 10k datasets.\n");
  return 0;
}
